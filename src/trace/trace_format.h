// On-disk trace file format (DDRT v1).
//
// A trace file is a RecordedExecution made durable: what a production site
// ships to the developer running replay. Layout:
//
//   [header]      12 bytes: magic "DDRT", version, flags
//   [chunk]*      sections: event chunks, `events_per_chunk` events each
//   [metadata]    section: model, scenario, counts, overhead ledger
//   [snapshot]    section: FailureSnapshot (the bug report)
//   [checkpoints] section: CheckpointIndex for partial replay
//   [footer]      section: offsets of everything above + per-chunk table
//   [trailer]     12 bytes: footer offset + magic "TRDD"
//
// Sections are located through the footer, never by position, so their
// order in the file is a writer choice: the streaming writer emits event
// chunks first (they exist before the run's metadata does) and the
// metadata/snapshot/checkpoint sections once the recording finishes.
//
// Every section is independently framed, optionally block-compressed
// (src/trace/block_compress.h) and CRC-32 checked, so a reader can verify
// or decode any chunk without touching the rest of the file, and a
// truncated/corrupt file fails with a Status instead of garbage.
//
//   section := kind u8 | filter/codec u8 | uncompressed_size varint |
//              stored_size varint | payload[stored_size] | crc32 fixed32
//
// The second framing byte packs two values: the low nibble is the byte
// codec (raw / ddrz), the high nibble the payload pre-filter id (event
// chunks may be varint-delta filtered before compression). Files written
// before filters existed carry a zero high nibble and decode unchanged.
//
// The trailer is fixed-width so `Open` can find the footer by reading the
// last 12 bytes; the footer then gives random access to all sections.
//
// A corpus bundle (DDRC v1, src/trace/corpus.h) embeds whole DDRT images
// back to back and indexes them with a kCorpusIndex section; the shared
// section framing (and CRC discipline) is what makes that reuse free.

#ifndef SRC_TRACE_TRACE_FORMAT_H_
#define SRC_TRACE_TRACE_FORMAT_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/util/codec.h"
#include "src/util/random_access_file.h"
#include "src/util/status.h"

namespace ddr {

inline constexpr uint32_t kTraceFileMagic = 0x54524444u;   // "DDRT"
inline constexpr uint32_t kTraceTrailerMagic = 0x44445254u;  // "TRDD"
inline constexpr uint32_t kTraceFormatVersion = 1;
// Stamped instead of kTraceFormatVersion when any chunk pre-filter is in
// use, so a version-1-only reader reports a clean "unsupported version"
// for filtered files rather than a corruption-shaped codec error.
// Unfiltered files keep version 1 and stay readable by older readers.
inline constexpr uint32_t kTraceFormatVersionFiltered = 2;
inline constexpr size_t kTraceHeaderBytes = 12;   // magic + version + flags
inline constexpr size_t kTraceTrailerBytes = 12;  // footer offset + magic

// Format ceiling on events per chunk, enforced by writers (options are
// clamped) and readers (larger counts are rejected). Decoders allocate
// event storage up front, so without a ceiling a crafted-but-decodable
// chunk (e.g. a tiny ddrz block inflating to 1 GiB of zeros, which *is* a
// valid varint stream) could demand tens of gigabytes; with it, the worst
// crafted allocation is ~300 MB — the same order as the section payload
// cap itself.
inline constexpr uint64_t kMaxChunkEvents = 1ull << 22;  // 4M events

enum class TraceSection : uint8_t {
  kMetadata = 1,
  kSnapshot = 2,
  kEventChunk = 3,
  kCheckpointIndex = 4,
  kFooter = 5,
  kCorpusIndex = 6,  // DDRC bundles only (src/trace/corpus.h)
};

enum class TraceCodec : uint8_t {
  kRaw = 0,
  kDdrz = 1,  // block LZ from src/trace/block_compress.h
};

// Payload pre-filter applied before the byte codec. Filters re-encode the
// section payload into a form that compresses better; kVarintDelta is the
// columnar delta event-chunk encoding from src/trace/chunk_codec.h.
enum class TraceFilter : uint8_t {
  kNone = 0,
  kVarintDelta = 1,
};

// Everything about the recording that is not the event payload itself.
struct TraceMetadata {
  std::string model;     // determinism model that produced the log
  std::string scenario;  // BugScenario name (lets `ddr-trace replay` rebuild
                         // the program); empty if unknown
  uint64_t event_count = 0;
  uint64_t events_per_chunk = 0;
  uint64_t recorded_bytes = 0;
  int64_t overhead_nanos = 0;
  int64_t cpu_nanos = 0;
  uint64_t intercepted_events = 0;
  uint64_t recorded_events = 0;
  // Production-run wall time, carried so a reloaded recording scores
  // debugging efficiency identically. The full harness-side ground truth
  // (Outcome) deliberately does not ship: replayers must work from the log
  // and snapshot alone.
  double original_wall_seconds = 0.0;

  std::vector<uint8_t> Encode() const;
  static Result<TraceMetadata> Decode(std::span<const uint8_t> bytes);
};

// Footer entry describing one event chunk.
struct TraceChunkInfo {
  uint64_t file_offset = 0;  // offset of the chunk's section framing
  uint64_t first_event = 0;
  uint64_t event_count = 0;
};

struct TraceFooter {
  uint64_t metadata_offset = 0;
  uint64_t snapshot_offset = 0;
  uint64_t checkpoint_offset = 0;
  uint64_t total_events = 0;
  std::vector<TraceChunkInfo> chunks;

  std::vector<uint8_t> Encode() const;
  static Result<TraceFooter> Decode(std::span<const uint8_t> bytes);
};

// Encodes a complete framed section (framing + payload + CRC). Compresses
// with ddrz when `allow_compress` and compression actually shrinks the
// payload. `filter` records how the payload bytes were pre-filtered — the
// caller applies the filter, this only stamps its id into the framing.
std::vector<uint8_t> EncodeTraceSection(TraceSection kind,
                                        const std::vector<uint8_t>& payload,
                                        bool allow_compress,
                                        TraceFilter filter = TraceFilter::kNone);

// Appends a framed section to `out`; returns the section's offset in `out`.
uint64_t AppendTraceSection(std::vector<uint8_t>* out, TraceSection kind,
                            const std::vector<uint8_t>& payload,
                            bool allow_compress,
                            TraceFilter filter = TraceFilter::kNone);

// Parsed section framing (not including payload bytes).
struct TraceSectionHeader {
  TraceSection kind = TraceSection::kMetadata;
  TraceCodec codec = TraceCodec::kRaw;
  TraceFilter filter = TraceFilter::kNone;
  uint64_t uncompressed_size = 0;
  uint64_t stored_size = 0;
};

Result<TraceSectionHeader> DecodeTraceSectionHeader(Decoder* decoder);

// One decoded (post-codec, still pre-filter) section payload. `view` is
// the payload bytes; it aliases the file's mmap region when the backend
// is zero-copy and the section was stored raw, and `storage` otherwise.
// Moving the struct keeps `view` valid (vector moves preserve the heap
// buffer; mapped views outlive the read by construction).
struct TraceSectionPayload {
  std::span<const uint8_t> view;
  TraceFilter filter = TraceFilter::kNone;
  std::vector<uint8_t> storage;
};

// Reads, CRC-checks, and decodes one framed section through a
// RandomAccessFile. `base + offset` is the section's absolute file
// position and `limit` the number of bytes in the window it must fit
// inside (the image size for a bare trace, the embedded window length
// for a corpus entry). Compressed payloads are decompressed directly
// from the backend's buffer (the mapped region itself under mmap); raw
// payloads are returned without any extra copy. `bytes_read`, when
// non-null, is advanced by the framing + payload bytes pulled through
// the handle. Thread-safe for concurrent calls on one const file.
Result<TraceSectionPayload> ReadTraceSection(
    const RandomAccessFile& file, uint64_t base, uint64_t offset,
    uint64_t limit, TraceSection expected_kind,
    std::atomic<uint64_t>* bytes_read);

}  // namespace ddr

#endif  // SRC_TRACE_TRACE_FORMAT_H_
