// On-disk trace file format (DDRT v1).
//
// A trace file is a RecordedExecution made durable: what a production site
// ships to the developer running replay. Layout:
//
//   [header]      12 bytes: magic "DDRT", version, flags
//   [metadata]    section: model, scenario, counts, overhead ledger
//   [snapshot]    section: FailureSnapshot (the bug report)
//   [chunk]*      sections: event chunks, `events_per_chunk` events each
//   [checkpoints] section: CheckpointIndex for partial replay
//   [footer]      section: offsets of everything above + per-chunk table
//   [trailer]     12 bytes: footer offset + magic "TRDD"
//
// Every section is independently framed, optionally block-compressed
// (src/trace/block_compress.h) and CRC-32 checked, so a reader can verify
// or decode any chunk without touching the rest of the file, and a
// truncated/corrupt file fails with a Status instead of garbage.
//
//   section := kind u8 | codec u8 | uncompressed_size varint |
//              stored_size varint | payload[stored_size] | crc32 fixed32
//
// The trailer is fixed-width so `Open` can find the footer by reading the
// last 12 bytes; the footer then gives random access to all sections.

#ifndef SRC_TRACE_TRACE_FORMAT_H_
#define SRC_TRACE_TRACE_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/codec.h"
#include "src/util/status.h"

namespace ddr {

inline constexpr uint32_t kTraceFileMagic = 0x54524444u;   // "DDRT"
inline constexpr uint32_t kTraceTrailerMagic = 0x44445254u;  // "TRDD"
inline constexpr uint32_t kTraceFormatVersion = 1;
inline constexpr size_t kTraceHeaderBytes = 12;   // magic + version + flags
inline constexpr size_t kTraceTrailerBytes = 12;  // footer offset + magic

enum class TraceSection : uint8_t {
  kMetadata = 1,
  kSnapshot = 2,
  kEventChunk = 3,
  kCheckpointIndex = 4,
  kFooter = 5,
};

enum class TraceCodec : uint8_t {
  kRaw = 0,
  kDdrz = 1,  // block LZ from src/trace/block_compress.h
};

// Everything about the recording that is not the event payload itself.
struct TraceMetadata {
  std::string model;     // determinism model that produced the log
  std::string scenario;  // BugScenario name (lets `ddr-trace replay` rebuild
                         // the program); empty if unknown
  uint64_t event_count = 0;
  uint64_t events_per_chunk = 0;
  uint64_t recorded_bytes = 0;
  int64_t overhead_nanos = 0;
  int64_t cpu_nanos = 0;
  uint64_t intercepted_events = 0;
  uint64_t recorded_events = 0;
  // Production-run wall time, carried so a reloaded recording scores
  // debugging efficiency identically. The full harness-side ground truth
  // (Outcome) deliberately does not ship: replayers must work from the log
  // and snapshot alone.
  double original_wall_seconds = 0.0;

  std::vector<uint8_t> Encode() const;
  static Result<TraceMetadata> Decode(const std::vector<uint8_t>& bytes);
};

// Footer entry describing one event chunk.
struct TraceChunkInfo {
  uint64_t file_offset = 0;  // offset of the chunk's section framing
  uint64_t first_event = 0;
  uint64_t event_count = 0;
};

struct TraceFooter {
  uint64_t metadata_offset = 0;
  uint64_t snapshot_offset = 0;
  uint64_t checkpoint_offset = 0;
  uint64_t total_events = 0;
  std::vector<TraceChunkInfo> chunks;

  std::vector<uint8_t> Encode() const;
  static Result<TraceFooter> Decode(const std::vector<uint8_t>& bytes);
};

// Appends a framed section to `out`. Compresses with ddrz when
// `allow_compress` and compression actually shrinks the payload.
// Returns the section's offset within `out`.
uint64_t AppendTraceSection(std::vector<uint8_t>* out, TraceSection kind,
                            const std::vector<uint8_t>& payload,
                            bool allow_compress);

// Parsed section framing (not including payload bytes).
struct TraceSectionHeader {
  TraceSection kind = TraceSection::kMetadata;
  TraceCodec codec = TraceCodec::kRaw;
  uint64_t uncompressed_size = 0;
  uint64_t stored_size = 0;
};

Result<TraceSectionHeader> DecodeTraceSectionHeader(Decoder* decoder);

}  // namespace ddr

#endif  // SRC_TRACE_TRACE_FORMAT_H_
