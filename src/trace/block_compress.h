// Self-contained block compressor for trace chunks ("ddrz").
//
// A dependency-free greedy LZ77 over a whole block: hash-chained matching of
// 4-byte sequences, emitted as (literal-run, match) token pairs. Varint-heavy
// event chunks compress well because consecutive events share type/obj/fiber
// bytes. The format is byte-oriented and platform independent:
//
//   token := literal_len  varint
//            match_len    varint   (0 = no match; otherwise >= kMinMatch)
//            literal bytes [literal_len]
//            distance     varint   (present iff match_len > 0; 1-based)
//
// Tokens repeat until the uncompressed size (framed by the caller) is
// reached. Decompression validates every length/distance and returns an
// error Status on malformed input instead of reading out of bounds.

#ifndef SRC_TRACE_BLOCK_COMPRESS_H_
#define SRC_TRACE_BLOCK_COMPRESS_H_

#include <cstdint>
#include <vector>

#include "src/util/status.h"

namespace ddr {

// Compresses `input`; output is appended to a fresh buffer. The result may
// be larger than the input for incompressible data — callers (TraceWriter)
// fall back to storing raw when that happens.
std::vector<uint8_t> CompressBlock(const std::vector<uint8_t>& input);

// Decompresses a block produced by CompressBlock. `expected_size` is the
// framed uncompressed size; a mismatch is an error.
Result<std::vector<uint8_t>> DecompressBlock(const uint8_t* data, size_t size,
                                             size_t expected_size);

}  // namespace ddr

#endif  // SRC_TRACE_BLOCK_COMPRESS_H_
