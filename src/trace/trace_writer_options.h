// Options shared by the buffered (TraceWriter) and streaming
// (StreamingTraceWriter) DDRT serializers.

#ifndef SRC_TRACE_TRACE_WRITER_OPTIONS_H_
#define SRC_TRACE_TRACE_WRITER_OPTIONS_H_

#include <cstdint>
#include <string>

#include "src/trace/trace_format.h"

namespace ddr {

struct TraceWriteOptions {
  // Events per chunk; the unit of partial decode. Small chunks seek finer,
  // large chunks compress better.
  uint64_t events_per_chunk = 512;
  // Emit a ReplayCheckpoint every N log events (0 = no checkpoints).
  uint64_t checkpoint_interval = 256;
  // Block-compress sections that shrink (incompressible sections are
  // stored raw automatically).
  bool compress = true;
  // Pre-filter for event chunks: kVarintDelta re-encodes each chunk
  // columnar with delta'd counters before the ddrz pass (see
  // src/trace/chunk_codec.h). Readers handle either transparently.
  TraceFilter chunk_filter = TraceFilter::kNone;
  // Scenario name stamped into metadata so `ddr-trace replay` can rebuild
  // the program. Optional.
  std::string scenario;
  // Production-run wall time for post-reload efficiency scoring. Optional.
  double original_wall_seconds = 0.0;
};

}  // namespace ddr

#endif  // SRC_TRACE_TRACE_WRITER_OPTIONS_H_
