// StreamingTraceWriter: chunk-at-a-time DDRT serialization.
//
// Where TraceWriter::Serialize builds the whole file image from a finished
// RecordedExecution, the streaming writer accepts events while the
// recording is still running and flushes each full chunk — compressed,
// CRC'd, framed — through a TraceByteSink immediately. Recorder memory is
// bounded by one chunk; the metadata / snapshot / checkpoint / footer
// sections are emitted by Finish() once the run's totals are known.
//
//   AtomicFileSink sink(path);
//   StreamingTraceWriter writer(&sink, options);
//   CHECK(writer.Begin().ok());
//   ... writer.AppendEvents(chunk_of_events) as they are observed ...
//   CHECK(writer.Finish(info).ok());   // durable, atomically renamed
//
// The buffered TraceWriter is a thin wrapper over this class, so streaming
// and buffered writes produce bit-identical files for the same inputs.

#ifndef SRC_TRACE_STREAMING_WRITER_H_
#define SRC_TRACE_STREAMING_WRITER_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/record/event_log.h"
#include "src/record/snapshot.h"
#include "src/trace/checkpoint.h"
#include "src/trace/trace_format.h"
#include "src/trace/trace_writer_options.h"

namespace ddr {

// Destination for serialized trace bytes. Append-only; offsets in the
// written stream start at 0 (a corpus embeds the stream at its own base).
class TraceByteSink {
 public:
  virtual ~TraceByteSink() = default;
  [[nodiscard]] virtual Status Append(const uint8_t* data, size_t size) = 0;
  // Durably completes the stream (flush / rename). Idempotent.
  [[nodiscard]] virtual Status Close() = 0;

  Status Append(const std::vector<uint8_t>& bytes) {
    return Append(bytes.data(), bytes.size());
  }
};

// Accumulates the stream in memory (TraceWriter::Serialize, tests).
class BufferByteSink : public TraceByteSink {
 public:
  using TraceByteSink::Append;
  Status Append(const uint8_t* data, size_t size) override {
    buffer_.insert(buffer_.end(), data, data + size);
    return OkStatus();
  }
  Status Close() override { return OkStatus(); }

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }

 private:
  std::vector<uint8_t> buffer_;
};

// Writes to a uniquely named temp file beside `path` and renames into
// place on Close(), so a crash or error mid-write never leaves a
// half-written file at `path`, and two concurrent writers targeting the
// same destination never clobber each other's in-progress temp (last
// rename wins with a complete file). The destructor discards the temp
// file if Close() was never reached.
class AtomicFileSink : public TraceByteSink {
 public:
  explicit AtomicFileSink(std::string path);
  ~AtomicFileSink() override;

  AtomicFileSink(const AtomicFileSink&) = delete;
  AtomicFileSink& operator=(const AtomicFileSink&) = delete;

  using TraceByteSink::Append;
  Status Append(const uint8_t* data, size_t size) override;
  Status Close() override;

  // The in-progress temp path (for tests and diagnostics).
  const std::string& tmp_path() const { return tmp_path_; }

 private:
  std::string path_;
  std::string tmp_path_;
  std::FILE* file_ = nullptr;
  bool closed_ = false;
};

// Everything about a recording that only exists once the run has ended.
struct TraceFinishInfo {
  std::string model;
  FailureSnapshot snapshot;
  uint64_t recorded_bytes = 0;
  int64_t overhead_nanos = 0;
  int64_t cpu_nanos = 0;
  uint64_t intercepted_events = 0;
  uint64_t recorded_events = 0;
  // Override the writer options' scenario / production wall time when set
  // (a harness knows these only at the end of the recorded run).
  std::string scenario;
  double original_wall_seconds = 0.0;
};

class StreamingTraceWriter : public EventStreamSink {
 public:
  // `sink` must outlive the writer; the writer does not own it.
  StreamingTraceWriter(TraceByteSink* sink, TraceWriteOptions options = {});

  // Writes the file header. Must be called exactly once, first.
  [[nodiscard]] Status Begin();

  // Buffers events, flushing every completed chunk through the sink.
  Status Append(const Event& event);
  Status AppendEvents(const Event* events, size_t count);
  Status AppendEvents(const std::vector<Event>& events) {
    return AppendEvents(events.data(), events.size());
  }

  // EventStreamSink: lets a Recorder stream straight into the writer.
  Status OnRecordedEvents(const Event* events, size_t count) override {
    return AppendEvents(events, count);
  }

  // Flushes the final partial chunk, writes metadata / snapshot /
  // checkpoint / footer / trailer sections, and closes the sink.
  [[nodiscard]] Status Finish(const TraceFinishInfo& info);

  uint64_t events_written() const { return total_events_; }
  // Bytes handed to the sink so far (the eventual file size after Finish).
  uint64_t bytes_written() const { return offset_; }
  const TraceWriteOptions& options() const { return options_; }
  // The effective chunk size: options().events_per_chunk with 0 defaulted
  // and the kMaxChunkEvents format ceiling applied. Feed this (not the
  // raw option) to anything that buffers per-chunk, e.g.
  // Recorder::SetStreamSink.
  uint64_t events_per_chunk() const { return events_per_chunk_; }

 private:
  Status FlushChunk();
  // Appends a framed section and returns its offset in the stream.
  Result<uint64_t> WriteSection(TraceSection kind,
                                const std::vector<uint8_t>& payload,
                                bool allow_compress,
                                TraceFilter filter = TraceFilter::kNone);

  TraceByteSink* sink_;
  TraceWriteOptions options_;
  uint64_t events_per_chunk_;
  bool begun_ = false;
  bool finished_ = false;
  Status status_;  // first sink/serialization error, sticky

  std::vector<Event> pending_;  // current partial chunk
  uint64_t total_events_ = 0;
  uint64_t offset_ = 0;  // bytes written to the sink
  TraceFooter footer_;
  CheckpointBuilder checkpoints_;
};

}  // namespace ddr

#endif  // SRC_TRACE_STREAMING_WRITER_H_
