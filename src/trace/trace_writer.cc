#include "src/trace/trace_writer.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace ddr {

std::vector<uint8_t> TraceWriter::Serialize(const RecordedExecution& recording) const {
  const uint64_t events_per_chunk =
      options_.events_per_chunk == 0 ? 512 : options_.events_per_chunk;
  const std::vector<Event>& events = recording.log.events();

  std::vector<uint8_t> file;
  // Header.
  {
    Encoder encoder;
    encoder.PutFixed32(kTraceFileMagic);
    encoder.PutFixed32(kTraceFormatVersion);
    encoder.PutFixed32(0);  // flags, reserved
    const std::vector<uint8_t>& bytes = encoder.buffer();
    file.insert(file.end(), bytes.begin(), bytes.end());
  }

  TraceFooter footer;
  footer.total_events = events.size();

  // Metadata.
  {
    TraceMetadata meta;
    meta.model = recording.model;
    meta.scenario = options_.scenario;
    meta.event_count = events.size();
    meta.events_per_chunk = events_per_chunk;
    meta.recorded_bytes = recording.recorded_bytes;
    meta.overhead_nanos = recording.overhead_nanos;
    meta.cpu_nanos = recording.cpu_nanos;
    meta.intercepted_events = recording.intercepted_events;
    meta.recorded_events = recording.recorded_events;
    meta.original_wall_seconds = options_.original_wall_seconds;
    footer.metadata_offset = AppendTraceSection(
        &file, TraceSection::kMetadata, meta.Encode(), options_.compress);
  }

  // Snapshot.
  footer.snapshot_offset =
      AppendTraceSection(&file, TraceSection::kSnapshot,
                         recording.snapshot.Encode(), options_.compress);

  // Event chunks.
  for (uint64_t first = 0; first < events.size(); first += events_per_chunk) {
    const uint64_t count =
        std::min<uint64_t>(events_per_chunk, events.size() - first);
    Encoder encoder;
    encoder.PutVarint64(first);
    encoder.PutVarint64(count);
    for (uint64_t i = 0; i < count; ++i) {
      events[first + i].EncodeTo(&encoder);
    }
    TraceChunkInfo chunk;
    chunk.first_event = first;
    chunk.event_count = count;
    chunk.file_offset = AppendTraceSection(&file, TraceSection::kEventChunk,
                                           encoder.buffer(), options_.compress);
    footer.chunks.push_back(chunk);
  }

  // Checkpoint index. Fingerprint verification during partial replay is
  // only sound when the log is the full intercepted stream.
  {
    const bool full_stream =
        recording.intercepted_events == recording.recorded_events &&
        recording.recorded_events == events.size();
    const CheckpointIndex index = BuildCheckpointIndex(
        recording.log, options_.checkpoint_interval, events_per_chunk,
        full_stream);
    footer.checkpoint_offset =
        AppendTraceSection(&file, TraceSection::kCheckpointIndex,
                           index.Encode(), options_.compress);
  }

  // Footer + trailer. The footer is stored raw so its offset math never
  // depends on compression behavior.
  const uint64_t footer_offset = AppendTraceSection(
      &file, TraceSection::kFooter, footer.Encode(), /*allow_compress=*/false);
  {
    Encoder encoder;
    encoder.PutFixed64(footer_offset);
    encoder.PutFixed32(kTraceTrailerMagic);
    const std::vector<uint8_t>& bytes = encoder.buffer();
    file.insert(file.end(), bytes.begin(), bytes.end());
  }
  return file;
}

Status TraceWriter::WriteFile(const std::string& path,
                              const RecordedExecution& recording) const {
  const std::vector<uint8_t> image = Serialize(recording);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return UnavailableError("cannot open trace file for writing: " + path);
  }
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  out.flush();
  if (!out) {
    std::remove(path.c_str());
    return UnavailableError("short write to trace file: " + path);
  }
  return OkStatus();
}

}  // namespace ddr
