#include "src/trace/trace_writer.h"

#include "src/util/logging.h"

namespace ddr {

TraceFinishInfo FinishInfoFor(const RecordedExecution& recording) {
  TraceFinishInfo info;
  info.model = recording.model;
  info.snapshot = recording.snapshot;
  info.recorded_bytes = recording.recorded_bytes;
  info.overhead_nanos = recording.overhead_nanos;
  info.cpu_nanos = recording.cpu_nanos;
  info.intercepted_events = recording.intercepted_events;
  info.recorded_events = recording.recorded_events;
  return info;
}

std::vector<uint8_t> TraceWriter::Serialize(
    const RecordedExecution& recording) const {
  BufferByteSink sink;
  StreamingTraceWriter writer(&sink, options_);
  // A buffer sink cannot fail, so these statuses are structural invariants.
  CHECK(writer.Begin().ok());
  CHECK(writer.AppendEvents(recording.log.events()).ok());
  CHECK(writer.Finish(FinishInfoFor(recording)).ok());
  return sink.TakeBuffer();
}

Status TraceWriter::WriteFile(const std::string& path,
                              const RecordedExecution& recording) const {
  AtomicFileSink sink(path);
  StreamingTraceWriter writer(&sink, options_);
  RETURN_IF_ERROR(writer.Begin());
  RETURN_IF_ERROR(writer.AppendEvents(recording.log.events()));
  return writer.Finish(FinishInfoFor(recording));
}

}  // namespace ddr
