#include "src/trace/chunk_cache.h"

#include <cerrno>
#include <cstdlib>
#include <limits>

#include "src/util/hash.h"

namespace ddr {

namespace {

// Decoded-chunk cost: the event payload plus per-entry bookkeeping (list
// node, map slot, control block), so a cache full of tiny chunks cannot
// blow past its byte budget on overhead alone.
constexpr uint64_t kEntryOverheadBytes = 160;

}  // namespace

uint64_t ChunkCacheBytesFromMbText(const char* text, uint64_t fallback_bytes) {
  if (text == nullptr || *text == '\0') {
    return fallback_bytes;
  }
  // strtoull accepts a leading '-' and wraps the value; reject it before
  // parsing so "-1" cannot become an 18-exabyte budget.
  if (*text == '-' || *text == '+') {
    return fallback_bytes;
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long mb = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE ||
      mb > (std::numeric_limits<uint64_t>::max() >> 20)) {
    return fallback_bytes;
  }
  return static_cast<uint64_t>(mb) << 20;
}

uint64_t DefaultChunkCacheBytes() {
  static const uint64_t kDefault = [] {
    constexpr uint64_t kFallback = uint64_t{64} << 20;
    if (const char* env = std::getenv("DDR_CACHE_MB")) {
      return ChunkCacheBytesFromMbText(env, kFallback);
    }
    return kFallback;
  }();
  return kDefault;
}

size_t ChunkCache::KeyHash::operator()(const ChunkKey& key) const {
  Fingerprint fp;
  fp.Mix(key.file_id);
  fp.Mix(key.image_offset);
  fp.Mix(key.chunk_index);
  return static_cast<size_t>(fp.value());
}

ChunkCache::ChunkCache(uint64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes),
      shard_capacity_(capacity_bytes / kShards) {
  shards_.reserve(kShards);
  for (size_t i = 0; i < kShards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ChunkCache::Shard& ChunkCache::ShardFor(const ChunkKey& key) {
  return *shards_[KeyHash{}(key) % kShards];
}

ChunkCache::EventsPtr ChunkCache::Lookup(const ChunkKey& key) {
  if (!enabled()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->events;
}

void ChunkCache::Insert(const ChunkKey& key, EventsPtr events) {
  if (!enabled() || events == nullptr) {
    return;
  }
  const uint64_t cost =
      events->size() * sizeof(Event) + kEntryOverheadBytes;
  if (cost > shard_capacity_) {
    return;
  }
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  if (const auto it = shard.index.find(key); it != shard.index.end()) {
    // Racing decoders of the same cold chunk: keep the incumbent, just
    // refresh its recency.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(events), cost});
  shard.index.emplace(key, shard.lru.begin());
  shard.bytes += cost;
  insertions_.fetch_add(1, std::memory_order_relaxed);
  while (shard.bytes > shard_capacity_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.cost;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

ChunkCacheStats ChunkCache::stats() const {
  ChunkCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  stats.capacity_bytes = capacity_bytes_;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    stats.bytes_in_use += shard->bytes;
    stats.entries += shard->lru.size();
  }
  return stats;
}

}  // namespace ddr
