// ChunkCache: a sharded LRU cache of decoded event chunks, shared across
// every TraceReader window of a corpus (or trace file).
//
// Decoding a chunk costs a disk read, a CRC pass, ddrz decompression, and
// the columnar un-delta — all of it identical every time the same chunk is
// touched. Replay traffic is chunk-hot: N concurrent replays of one DDRC
// bundle revisit the same entries, and repeated ReadEvents/PartialReplay
// windows revisit the same mid-trace chunks. The cache keys decoded
// chunks by (file, image offset, chunk index) and hands out shared_ptrs
// to immutable event vectors, so a warm re-read costs zero disk bytes and
// zero decode work, whatever thread asks.
//
// Capacity is budgeted in bytes of decoded events and split evenly across
// shards; each shard runs an exact LRU behind its own mutex, so readers
// on different shards never contend. Hit/miss/eviction/insertion counters
// are process-cheap atomics, exposed through stats() — the bench and the
// `ddr-trace corpus replay` summary both read them.

#ifndef SRC_TRACE_CHUNK_CACHE_H_
#define SRC_TRACE_CHUNK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/sim/event.h"
#include "src/util/thread_annotations.h"

namespace ddr {

// Identifies one decoded chunk. `file_id` is the open handle's
// process-unique RandomAccessFile::id(), so one cache can safely serve
// several files and can never serve stale chunks after a path is
// atomically replaced (windows sharing one handle share entries; a fresh
// open of the same path gets a fresh id); `image_offset` is the DDRT
// image's base offset inside that file (0 for a bare trace, the entry
// offset for a corpus image); `chunk_index` is the position in the
// image's footer chunk table.
struct ChunkKey {
  uint64_t file_id = 0;
  uint64_t image_offset = 0;
  uint64_t chunk_index = 0;

  bool operator==(const ChunkKey& other) const = default;
};

struct ChunkCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t insertions = 0;
  uint64_t bytes_in_use = 0;
  uint64_t entries = 0;
  uint64_t capacity_bytes = 0;

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

// Default capacity for corpus-serving caches: DDR_CACHE_MB env override,
// else 64 MiB.
uint64_t DefaultChunkCacheBytes();

// Parses a cache budget in MiB ("64") into bytes. Junk, trailing garbage,
// out-of-range values (ERANGE), and anything whose byte count would
// overflow uint64 when shifted (including "-1", which strtoull would
// happily wrap) all yield `fallback_bytes` — a bad DDR_CACHE_MB must
// degrade to the default, never silently wrap to a bogus budget. This is
// the env-variable half; the CLI rejects the same inputs loudly.
uint64_t ChunkCacheBytesFromMbText(const char* text, uint64_t fallback_bytes);

class ChunkCache {
 public:
  using EventsPtr = std::shared_ptr<const std::vector<Event>>;

  // `capacity_bytes` 0 disables caching (every Lookup misses, Insert is a
  // no-op) — useful as an explicit cold baseline.
  explicit ChunkCache(uint64_t capacity_bytes = DefaultChunkCacheBytes());

  ChunkCache(const ChunkCache&) = delete;
  ChunkCache& operator=(const ChunkCache&) = delete;

  // Counts a hit or miss; nullptr on miss.
  EventsPtr Lookup(const ChunkKey& key);

  // Inserts (or refreshes) the decoded chunk and evicts least-recently
  // used entries until the cache fits its budget again. Entries larger
  // than a whole shard's budget are not admitted (they would only evict
  // everything else and then leave).
  void Insert(const ChunkKey& key, EventsPtr events);

  ChunkCacheStats stats() const;
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  bool enabled() const { return capacity_bytes_ > 0; }

 private:
  struct KeyHash {
    size_t operator()(const ChunkKey& key) const;
  };

  struct Entry {
    ChunkKey key;
    EventsPtr events;
    uint64_t cost = 0;
  };

  // Exact LRU: list front = most recent; the map points into the list.
  struct Shard {
    Mutex mu;
    std::list<Entry> lru GUARDED_BY(mu);
    std::unordered_map<ChunkKey, std::list<Entry>::iterator, KeyHash> index
        GUARDED_BY(mu);
    uint64_t bytes GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const ChunkKey& key);

  static constexpr size_t kShards = 8;

  const uint64_t capacity_bytes_;
  const uint64_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> insertions_{0};
};

}  // namespace ddr

#endif  // SRC_TRACE_CHUNK_CACHE_H_
