// TraceWriter: serializes a RecordedExecution into the DDRT v1 chunked
// file format (see trace_format.h).

#ifndef SRC_TRACE_TRACE_WRITER_H_
#define SRC_TRACE_TRACE_WRITER_H_

#include <string>
#include <vector>

#include "src/record/recorded_execution.h"
#include "src/trace/checkpoint.h"
#include "src/trace/trace_format.h"

namespace ddr {

struct TraceWriteOptions {
  // Events per chunk; the unit of partial decode. Small chunks seek finer,
  // large chunks compress better.
  uint64_t events_per_chunk = 512;
  // Emit a ReplayCheckpoint every N log events (0 = no checkpoints).
  uint64_t checkpoint_interval = 256;
  // Block-compress sections that shrink (incompressible sections are
  // stored raw automatically).
  bool compress = true;
  // Scenario name stamped into metadata so `ddr-trace replay` can rebuild
  // the program. Optional.
  std::string scenario;
  // Production-run wall time for post-reload efficiency scoring. Optional.
  double original_wall_seconds = 0.0;
};

class TraceWriter {
 public:
  explicit TraceWriter(TraceWriteOptions options = {})
      : options_(std::move(options)) {}

  // Serializes `recording` to the complete file image (header..trailer).
  std::vector<uint8_t> Serialize(const RecordedExecution& recording) const;

  // Serializes and writes atomically-ish (write to path, fail on I/O error).
  Status WriteFile(const std::string& path,
                   const RecordedExecution& recording) const;

  const TraceWriteOptions& options() const { return options_; }

 private:
  TraceWriteOptions options_;
};

}  // namespace ddr

#endif  // SRC_TRACE_TRACE_WRITER_H_
