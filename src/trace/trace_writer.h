// TraceWriter: buffered convenience wrapper that serializes a finished
// RecordedExecution into the DDRT v1 chunked file format. Internally it
// drives StreamingTraceWriter (src/trace/streaming_writer.h), so a
// recording streamed to disk during the run and one serialized after the
// fact produce bit-identical files.

#ifndef SRC_TRACE_TRACE_WRITER_H_
#define SRC_TRACE_TRACE_WRITER_H_

#include <string>
#include <vector>

#include "src/record/recorded_execution.h"
#include "src/trace/streaming_writer.h"
#include "src/trace/trace_writer_options.h"

namespace ddr {

// Collects the run-end totals the streaming writer's Finish needs from a
// RecordedExecution (the scenario / wall-seconds fields stay unset so the
// writer falls back to its options).
TraceFinishInfo FinishInfoFor(const RecordedExecution& recording);

class TraceWriter {
 public:
  explicit TraceWriter(TraceWriteOptions options = {})
      : options_(std::move(options)) {}

  // Serializes `recording` to the complete file image (header..trailer).
  std::vector<uint8_t> Serialize(const RecordedExecution& recording) const;

  // Serializes and writes atomically: the image lands in a uniquely named
  // temp file beside `path` (see AtomicFileSink) and is renamed into
  // place only when complete, so `path` never holds a torn file.
  Status WriteFile(const std::string& path,
                   const RecordedExecution& recording) const;

  const TraceWriteOptions& options() const { return options_; }

 private:
  TraceWriteOptions options_;
};

}  // namespace ddr

#endif  // SRC_TRACE_TRACE_WRITER_H_
