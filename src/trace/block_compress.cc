#include "src/trace/block_compress.h"

#include <cstring>

#include "src/util/codec.h"

namespace ddr {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxChainSteps = 16;  // bounded match search per position
constexpr size_t kHashBits = 14;
constexpr size_t kHashSize = 1u << kHashBits;

inline uint32_t HashAt(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  // Multiplicative hash of the 4-byte window.
  return (v * 2654435761u) >> (32 - kHashBits);
}

inline size_t MatchLength(const uint8_t* a, const uint8_t* b, const uint8_t* end) {
  const uint8_t* start = a;
  while (a < end && *a == *b) {
    ++a;
    ++b;
  }
  return static_cast<size_t>(a - start);
}

void EmitToken(Encoder* out, const uint8_t* literals, size_t literal_len,
               size_t match_len, size_t distance) {
  out->PutVarint64(literal_len);
  out->PutVarint64(match_len);
  for (size_t i = 0; i < literal_len; ++i) {
    out->PutFixed8(literals[i]);
  }
  if (match_len > 0) {
    out->PutVarint64(distance);
  }
}

}  // namespace

std::vector<uint8_t> CompressBlock(const std::vector<uint8_t>& input) {
  Encoder out;
  const uint8_t* data = input.data();
  const size_t size = input.size();
  if (size < kMinMatch + 1) {
    if (size > 0) {
      EmitToken(&out, data, size, 0, 0);
    }
    return out.TakeBuffer();
  }

  // head[h] = most recent position with hash h; prev[i] = previous position
  // sharing i's hash (a chain through the block).
  std::vector<int32_t> head(kHashSize, -1);
  std::vector<int32_t> prev(size, -1);

  const uint8_t* const end = data + size;
  size_t pos = 0;
  size_t literal_start = 0;
  const size_t hash_limit = size - kMinMatch + 1;

  while (pos < hash_limit) {
    const uint32_t h = HashAt(data + pos);
    size_t best_len = 0;
    size_t best_dist = 0;
    int32_t candidate = head[h];
    for (size_t step = 0; candidate >= 0 && step < kMaxChainSteps; ++step) {
      const size_t len =
          MatchLength(data + pos, data + candidate, end);
      if (len > best_len) {
        best_len = len;
        best_dist = pos - static_cast<size_t>(candidate);
      }
      candidate = prev[candidate];
    }

    if (best_len >= kMinMatch) {
      EmitToken(&out, data + literal_start, pos - literal_start, best_len,
                best_dist);
      // Insert the covered positions into the chains so later matches can
      // reference them.
      const size_t match_end = pos + best_len;
      while (pos < match_end && pos < hash_limit) {
        const uint32_t mh = HashAt(data + pos);
        prev[pos] = head[mh];
        head[mh] = static_cast<int32_t>(pos);
        ++pos;
      }
      pos = match_end;
      literal_start = pos;
    } else {
      prev[pos] = head[h];
      head[h] = static_cast<int32_t>(pos);
      ++pos;
    }
  }

  if (literal_start < size) {
    EmitToken(&out, data + literal_start, size - literal_start, 0, 0);
  }
  return out.TakeBuffer();
}

Result<std::vector<uint8_t>> DecompressBlock(const uint8_t* data, size_t size,
                                             size_t expected_size) {
  std::vector<uint8_t> out;
  out.reserve(expected_size);
  Decoder decoder(data, size);
  while (out.size() < expected_size) {
    ASSIGN_OR_RETURN(uint64_t literal_len, decoder.GetVarint64());
    ASSIGN_OR_RETURN(uint64_t match_len, decoder.GetVarint64());
    if (literal_len > decoder.remaining()) {
      return InvalidArgumentError("ddrz: literal run past end of block");
    }
    // Guard without summing: huge lengths must not wrap uint64 past the
    // size check and unleash an unbounded copy loop.
    const uint64_t space = expected_size - out.size();
    if (literal_len > space || match_len > space - literal_len) {
      return InvalidArgumentError("ddrz: token overruns declared size");
    }
    // Bulk-copy the literal run (bounds established above).
    ASSIGN_OR_RETURN(const uint8_t* literals,
                     decoder.GetBytes(static_cast<size_t>(literal_len)));
    out.insert(out.end(), literals, literals + literal_len);
    if (match_len > 0) {
      if (match_len < kMinMatch) {
        return InvalidArgumentError("ddrz: match shorter than minimum");
      }
      ASSIGN_OR_RETURN(uint64_t distance, decoder.GetVarint64());
      if (distance == 0 || distance > out.size()) {
        return InvalidArgumentError("ddrz: match distance out of range");
      }
      // Byte-by-byte copy: overlapping matches (distance < match_len)
      // replicate the repeated pattern, as in LZ77.
      size_t from = out.size() - static_cast<size_t>(distance);
      for (uint64_t i = 0; i < match_len; ++i) {
        out.push_back(out[from + i]);
      }
    }
  }
  if (!decoder.Done()) {
    return InvalidArgumentError("ddrz: trailing bytes after final token");
  }
  return out;
}

}  // namespace ddr
