// TraceReader: random-access reader for DDRT v1 trace files.
//
// Open() reads only the header, trailer, footer, metadata, snapshot, and
// checkpoint index (all small). Event chunks are read on demand, so
// inspecting a trace or decoding a mid-trace range does not pull the whole
// file through memory — `bytes_read()` exposes exactly how much I/O a
// given access pattern cost.
//
// All reads go through a RandomAccessFile (src/util/random_access_file.h):
// buffered stream, positional pread, or zero-copy mmap, chosen per open or
// process-wide via DDR_IO_BACKEND. Every read method is const and safe to
// call from many threads at once, and a reader window can share its handle
// with other windows (OpenShared — how CorpusReader serves N concurrent
// replays of one bundle through a single file open).
//
// When a ChunkCache is attached, decoded chunks are shared across every
// reader of the same file: a warm re-read of a hot chunk costs zero disk
// bytes and zero decode work. `bytes_read()` counts only cold bytes, and
// `cache_hits()`/`cache_misses()` expose the split per reader.

#ifndef SRC_TRACE_TRACE_READER_H_
#define SRC_TRACE_TRACE_READER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/record/recorded_execution.h"
#include "src/trace/checkpoint.h"
#include "src/trace/chunk_cache.h"
#include "src/trace/trace_format.h"
#include "src/util/random_access_file.h"

namespace ddr {

struct TraceReaderOptions {
  RandomAccessFileOptions io;
  // Optional decoded-chunk cache, shared across readers. One cache may
  // serve many files: entries are namespaced by the open handle's
  // process-unique id, so readers sharing a handle share chunks and a
  // re-opened (possibly replaced) path never sees stale ones.
  std::shared_ptr<ChunkCache> cache;
};

class TraceReader {
 public:
  static Result<TraceReader> Open(const std::string& path,
                                  const TraceReaderOptions& options = {});

  // Opens a DDRT image embedded in a larger file (a DDRC corpus bundle):
  // the image spans [base_offset, base_offset + image_size) of `path`.
  // `image_size` 0 means "through end of file".
  static Result<TraceReader> OpenAt(const std::string& path,
                                    uint64_t base_offset, uint64_t image_size,
                                    const TraceReaderOptions& options = {});

  // Opens a window over an already-open shared handle: no file open, no
  // lseek cursor, just the image's own section parses. This is how a
  // CorpusReader hands out per-entry readers — N threads each take a
  // cheap window onto one handle (and one decoded-chunk cache).
  static Result<TraceReader> OpenShared(std::shared_ptr<RandomAccessFile> file,
                                        uint64_t base_offset,
                                        uint64_t image_size,
                                        std::shared_ptr<ChunkCache> cache = nullptr);

  TraceReader(TraceReader&& other) noexcept;
  TraceReader& operator=(TraceReader&& other) noexcept;

  const std::string& path() const { return path_; }
  const TraceMetadata& metadata() const { return metadata_; }
  const FailureSnapshot& snapshot() const { return snapshot_; }
  const CheckpointIndex& checkpoints() const { return checkpoints_; }
  const std::vector<TraceChunkInfo>& chunks() const { return footer_.chunks; }
  uint64_t total_events() const { return footer_.total_events; }
  // Size of the DDRT image (the whole file for Open, the embedded window
  // for OpenAt/OpenShared).
  uint64_t file_size() const { return file_size_; }
  // The backend actually serving reads (after any open-time fallback).
  IoBackend io_backend() const { return file_->backend(); }
  // Cold bytes this reader pulled through the backend so far (framing +
  // payload). Cache hits add nothing here — that is the point.
  uint64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  // Decoded-chunk cache outcomes for this reader's chunk accesses. Both
  // stay 0 when no cache is attached.
  uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }

  // Decodes every chunk into an EventLog.
  Result<EventLog> ReadAllEvents() const;

  // Decodes only the chunks covering [first_event, first_event + count),
  // returning exactly those events.
  Result<std::vector<Event>> ReadEvents(uint64_t first_event,
                                        uint64_t count) const;

  // Reassembles the full RecordedExecution (original_outcome stays
  // default-initialized: ground truth does not ship in trace files).
  Result<RecordedExecution> ReadRecordedExecution() const;

  // Full structural verification: every section CRC, every event decodes,
  // chunk table contiguity, and checkpoint fingerprints recompute.
  Status Verify() const;

 private:
  TraceReader() = default;

  static Result<TraceReader> OpenImpl(std::shared_ptr<RandomAccessFile> file,
                                      uint64_t base_offset,
                                      uint64_t image_size,
                                      std::shared_ptr<ChunkCache> cache);

  Result<TraceSectionPayload> ReadSection(uint64_t offset,
                                          TraceSection expected_kind) const;
  Result<ChunkCache::EventsPtr> DecodeChunk(size_t chunk_index) const;

  std::string path_;
  std::shared_ptr<RandomAccessFile> file_;
  std::shared_ptr<ChunkCache> cache_;
  uint64_t cache_file_id_ = 0;  // file_->id(): cache namespace for this handle
  uint64_t base_offset_ = 0;    // nonzero for corpus-embedded images
  uint64_t file_size_ = 0;
  mutable std::atomic<uint64_t> bytes_read_{0};
  mutable std::atomic<uint64_t> cache_hits_{0};
  mutable std::atomic<uint64_t> cache_misses_{0};

  TraceFooter footer_;
  TraceMetadata metadata_;
  FailureSnapshot snapshot_;
  CheckpointIndex checkpoints_;
};

}  // namespace ddr

#endif  // SRC_TRACE_TRACE_READER_H_
