// TraceReader: random-access reader for DDRT v1 trace files.
//
// Open() reads only the header, trailer, footer, metadata, snapshot, and
// checkpoint index (all small). Event chunks are read on demand, so
// inspecting a trace or decoding a mid-trace range does not pull the whole
// file through memory — `bytes_read()` exposes exactly how much I/O a
// given access pattern cost.

#ifndef SRC_TRACE_TRACE_READER_H_
#define SRC_TRACE_TRACE_READER_H_

#include <fstream>
#include <string>
#include <vector>

#include "src/record/recorded_execution.h"
#include "src/trace/checkpoint.h"
#include "src/trace/trace_format.h"

namespace ddr {

class TraceReader {
 public:
  static Result<TraceReader> Open(const std::string& path);

  // Opens a DDRT image embedded in a larger file (a DDRC corpus bundle):
  // the image spans [base_offset, base_offset + image_size) of `path`.
  // `image_size` 0 means "through end of file".
  static Result<TraceReader> OpenAt(const std::string& path,
                                    uint64_t base_offset, uint64_t image_size);

  const std::string& path() const { return path_; }
  const TraceMetadata& metadata() const { return metadata_; }
  const FailureSnapshot& snapshot() const { return snapshot_; }
  const CheckpointIndex& checkpoints() const { return checkpoints_; }
  const std::vector<TraceChunkInfo>& chunks() const { return footer_.chunks; }
  uint64_t total_events() const { return footer_.total_events; }
  // Size of the DDRT image (the whole file for Open, the embedded window
  // for OpenAt).
  uint64_t file_size() const { return file_size_; }
  // Total payload + framing bytes pulled from disk so far.
  uint64_t bytes_read() const { return bytes_read_; }

  // Decodes every chunk into an EventLog.
  Result<EventLog> ReadAllEvents();

  // Decodes only the chunks covering [first_event, first_event + count),
  // returning exactly those events.
  Result<std::vector<Event>> ReadEvents(uint64_t first_event, uint64_t count);

  // Reassembles the full RecordedExecution (original_outcome stays
  // default-initialized: ground truth does not ship in trace files).
  Result<RecordedExecution> ReadRecordedExecution();

  // Full structural verification: every section CRC, every event decodes,
  // chunk table contiguity, and checkpoint fingerprints recompute.
  Status Verify();

 private:
  TraceReader() = default;

  Result<std::vector<uint8_t>> ReadSection(uint64_t offset,
                                           TraceSection expected_kind,
                                           TraceFilter* filter = nullptr);
  Result<std::vector<Event>> DecodeChunk(const TraceChunkInfo& chunk);

  std::string path_;
  mutable std::ifstream stream_;
  uint64_t base_offset_ = 0;  // nonzero for corpus-embedded images
  uint64_t file_size_ = 0;
  uint64_t bytes_read_ = 0;

  TraceFooter footer_;
  TraceMetadata metadata_;
  FailureSnapshot snapshot_;
  CheckpointIndex checkpoints_;
};

}  // namespace ddr

#endif  // SRC_TRACE_TRACE_READER_H_
