#include "src/trace/streaming_writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/trace/chunk_codec.h"
#include "src/util/fault_injection.h"
#include "src/util/string_util.h"

namespace ddr {

// ------------------------------------------------------------ AtomicFileSink

namespace {

// Unique per process lifetime, so concurrent writers (threads or
// processes) targeting the same destination get distinct temp files.
std::string MakeTempPath(const std::string& path) {
  static std::atomic<uint64_t> counter{0};
  // The pid names a scratch file that is renamed away or deleted; it
  // never reaches recorded bytes.
  // NOLINTNEXTLINE(ddr-nondeterminism): temp-file naming only (see above)
  return StrPrintf("%s.tmp.%d.%llu", path.c_str(), static_cast<int>(getpid()),
                   static_cast<unsigned long long>(
                       counter.fetch_add(1, std::memory_order_relaxed)));
}

#if defined(__unix__) || defined(__APPLE__)
#define DDR_HAVE_FSYNC 1
#else
#define DDR_HAVE_FSYNC 0
#endif

// Durability for the temp file's bytes before rename. Without this, a
// crash right after the "atomic" rename can still leave a zero-length or
// torn file at the target path: rename only orders the directory entry,
// not the data blocks behind it.
Status SyncFile(std::FILE* file, const std::string& tmp_path) {
  RETURN_IF_ERROR(FaultPoint("trace.sink.sync"));
#if DDR_HAVE_FSYNC
  int rc = 0;
  do {
    if (FaultEintr("trace.sink.sync")) {
      errno = EINTR;
      rc = -1;
      continue;  // simulated interrupted fsync; the loop retries for real
    }
    rc = ::fsync(::fileno(file));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return UnavailableError(StrPrintf("fsync of trace temp file %s failed: %s",
                                      tmp_path.c_str(),
                                      std::strerror(errno)));
  }
#else
  (void)file;
  (void)tmp_path;
#endif
  return OkStatus();
}

// Durability for the rename itself: fsync the parent directory so the new
// directory entry survives a crash. Best-effort — some filesystems refuse
// directory fsync, and by this point the data is already safe on disk.
void SyncParentDir(const std::string& path) {
  // Best-effort (see below), so an injected fault just skips the sync —
  // but the site still participates in crash enumeration.
  if (!FaultPoint("trace.sink.dirsync").ok()) {
    return;
  }
#if DDR_HAVE_FSYNC
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  int fd = -1;
  do {
    fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return;
  }
  int rc = 0;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  ::close(fd);
#else
  (void)path;
#endif
}

}  // namespace

AtomicFileSink::AtomicFileSink(std::string path)
    : path_(std::move(path)), tmp_path_(MakeTempPath(path_)) {
  file_ = std::fopen(tmp_path_.c_str(), "wb");
}

AtomicFileSink::~AtomicFileSink() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (!closed_) {
    std::remove(tmp_path_.c_str());
  }
}

Status AtomicFileSink::Append(const uint8_t* data, size_t size) {
  if (closed_) {
    return FailedPreconditionError("append to a closed trace file sink");
  }
  if (file_ == nullptr) {
    return UnavailableError("cannot open trace temp file for writing: " +
                            tmp_path_);
  }
  size_t allow = size;
  Status injected = OkStatus();
  if (FaultsArmed()) {
    WriteFaultOutcome fault = FaultWritePoint("trace.sink.append", size);
    allow = fault.allowed;
    injected = std::move(fault.failure);
  }
  errno = 0;
  if (std::fwrite(data, 1, allow, file_) != allow) {
    return UnavailableError(StrPrintf(
        "short write to trace temp file %s: %s", tmp_path_.c_str(),
        std::strerror(errno != 0 ? errno : EIO)));
  }
  if (!injected.ok()) {
    return Status(injected.code(),
                  "trace temp file " + tmp_path_ + ": " + injected.message());
  }
  return OkStatus();
}

Status AtomicFileSink::Close() {
  if (closed_) {
    return OkStatus();
  }
  if (file_ == nullptr) {
    return UnavailableError("cannot open trace temp file for writing: " +
                            tmp_path_);
  }
  errno = 0;
  const bool flushed =
      std::fflush(file_) == 0 && FaultPoint("trace.sink.flush").ok();
  const bool file_ok = std::ferror(file_) == 0;
  const int flush_errno = errno;
  const Status synced = flushed && file_ok ? SyncFile(file_, tmp_path_)
                                           : OkStatus();
  std::fclose(file_);
  file_ = nullptr;
  if (!flushed || !file_ok) {
    std::remove(tmp_path_.c_str());
    return UnavailableError(StrPrintf(
        "short write to trace temp file %s: %s", tmp_path_.c_str(),
        std::strerror(flush_errno != 0 ? flush_errno : EIO)));
  }
  if (!synced.ok()) {
    std::remove(tmp_path_.c_str());
    return synced;
  }
  errno = 0;
  const bool renamed = FaultPoint("trace.sink.rename").ok() &&
                       std::rename(tmp_path_.c_str(), path_.c_str()) == 0;
  if (!renamed) {
    std::remove(tmp_path_.c_str());
    return UnavailableError(StrPrintf(
        "cannot rename trace temp file into place at %s: %s", path_.c_str(),
        std::strerror(errno != 0 ? errno : EIO)));
  }
  SyncParentDir(path_);
  closed_ = true;
  return OkStatus();
}

// ------------------------------------------------------ StreamingTraceWriter

namespace {

// Per-section fault sites: a crash plan can target exactly one stage of
// the stream (e.g. "the metadata made it, the footer did not").
const char* SectionFaultSite(TraceSection kind) {
  switch (kind) {
    case TraceSection::kMetadata:
      return "trace.section.metadata";
    case TraceSection::kSnapshot:
      return "trace.section.snapshot";
    case TraceSection::kEventChunk:
      return "trace.section.chunk";
    case TraceSection::kCheckpointIndex:
      return "trace.section.checkpoint";
    case TraceSection::kFooter:
      return "trace.section.footer";
    case TraceSection::kCorpusIndex:
      return "trace.section.index";
  }
  return "trace.section";
}

}  // namespace

StreamingTraceWriter::StreamingTraceWriter(TraceByteSink* sink,
                                           TraceWriteOptions options)
    : sink_(sink),
      options_(std::move(options)),
      events_per_chunk_(std::min<uint64_t>(
          options_.events_per_chunk == 0 ? 512 : options_.events_per_chunk,
          kMaxChunkEvents)),
      checkpoints_(options_.checkpoint_interval, events_per_chunk_) {
  pending_.reserve(static_cast<size_t>(events_per_chunk_));
}

Status StreamingTraceWriter::Begin() {
  if (begun_) {
    return FailedPreconditionError("StreamingTraceWriter::Begin called twice");
  }
  begun_ = true;
  if (Status injected = FaultPoint("trace.header"); !injected.ok()) {
    status_ = injected;
    return status_;
  }
  Encoder encoder;
  encoder.PutFixed32(kTraceFileMagic);
  encoder.PutFixed32(options_.chunk_filter == TraceFilter::kNone
                         ? kTraceFormatVersion
                         : kTraceFormatVersionFiltered);
  encoder.PutFixed32(0);  // flags, reserved
  status_ = sink_->Append(encoder.buffer());
  if (status_.ok()) {
    offset_ = encoder.size();
  }
  return status_;
}

Result<uint64_t> StreamingTraceWriter::WriteSection(
    TraceSection kind, const std::vector<uint8_t>& payload, bool allow_compress,
    TraceFilter filter) {
  RETURN_IF_ERROR(FaultPoint(SectionFaultSite(kind)));
  const std::vector<uint8_t> section =
      EncodeTraceSection(kind, payload, allow_compress, filter);
  RETURN_IF_ERROR(sink_->Append(section));
  const uint64_t section_offset = offset_;
  offset_ += section.size();
  return section_offset;
}

Status StreamingTraceWriter::FlushChunk() {
  if (pending_.empty()) {
    return OkStatus();
  }
  const uint64_t first = total_events_ - pending_.size();
  const std::vector<uint8_t> payload = EncodeEventChunkPayload(
      pending_.data(), pending_.size(), first, options_.chunk_filter);
  ASSIGN_OR_RETURN(uint64_t chunk_offset,
                   WriteSection(TraceSection::kEventChunk, payload,
                                options_.compress, options_.chunk_filter));
  TraceChunkInfo chunk;
  chunk.file_offset = chunk_offset;
  chunk.first_event = first;
  chunk.event_count = pending_.size();
  footer_.chunks.push_back(chunk);
  pending_.clear();
  return OkStatus();
}

Status StreamingTraceWriter::AppendEvents(const Event* events, size_t count) {
  if (!begun_ || finished_) {
    return FailedPreconditionError(
        "StreamingTraceWriter::AppendEvents outside Begin/Finish");
  }
  if (!status_.ok()) {
    return status_;
  }
  for (size_t i = 0; i < count; ++i) {
    checkpoints_.Observe(events[i]);
    pending_.push_back(events[i]);
    ++total_events_;
    if (pending_.size() >= events_per_chunk_) {
      status_ = FlushChunk();
      if (!status_.ok()) {
        return status_;
      }
    }
  }
  return OkStatus();
}

Status StreamingTraceWriter::Append(const Event& event) {
  return AppendEvents(&event, 1);
}

Status StreamingTraceWriter::Finish(const TraceFinishInfo& info) {
  if (!begun_) {
    return FailedPreconditionError("StreamingTraceWriter::Finish before Begin");
  }
  if (finished_) {
    return FailedPreconditionError("StreamingTraceWriter::Finish called twice");
  }
  if (!status_.ok()) {
    return status_;
  }
  finished_ = true;

  Status status = [&]() -> Status {
    RETURN_IF_ERROR(FlushChunk());
    footer_.total_events = total_events_;

    // Metadata.
    {
      TraceMetadata meta;
      meta.model = info.model;
      meta.scenario = info.scenario.empty() ? options_.scenario : info.scenario;
      meta.event_count = total_events_;
      meta.events_per_chunk = events_per_chunk_;
      meta.recorded_bytes = info.recorded_bytes;
      meta.overhead_nanos = info.overhead_nanos;
      meta.cpu_nanos = info.cpu_nanos;
      meta.intercepted_events = info.intercepted_events;
      meta.recorded_events = info.recorded_events;
      meta.original_wall_seconds = info.original_wall_seconds != 0.0
                                       ? info.original_wall_seconds
                                       : options_.original_wall_seconds;
      ASSIGN_OR_RETURN(footer_.metadata_offset,
                       WriteSection(TraceSection::kMetadata, meta.Encode(),
                                    options_.compress));
    }

    // Snapshot.
    ASSIGN_OR_RETURN(footer_.snapshot_offset,
                     WriteSection(TraceSection::kSnapshot,
                                  info.snapshot.Encode(), options_.compress));

    // Checkpoint index. Fingerprint verification during partial replay is
    // only sound when the log is the full intercepted stream.
    {
      const bool full_stream =
          info.intercepted_events == info.recorded_events &&
          info.recorded_events == total_events_;
      const CheckpointIndex index = checkpoints_.Finish(full_stream);
      ASSIGN_OR_RETURN(footer_.checkpoint_offset,
                       WriteSection(TraceSection::kCheckpointIndex,
                                    index.Encode(), options_.compress));
    }

    // Footer + trailer. The footer is stored raw so its offset math never
    // depends on compression behavior.
    ASSIGN_OR_RETURN(const uint64_t footer_offset,
                     WriteSection(TraceSection::kFooter, footer_.Encode(),
                                  /*allow_compress=*/false));
    RETURN_IF_ERROR(FaultPoint("trace.trailer"));
    Encoder encoder;
    encoder.PutFixed64(footer_offset);
    encoder.PutFixed32(kTraceTrailerMagic);
    RETURN_IF_ERROR(sink_->Append(encoder.buffer()));
    offset_ += encoder.size();

    return sink_->Close();
  }();

  status_ = status;
  return status;
}

}  // namespace ddr
