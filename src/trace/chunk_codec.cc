#include "src/trace/chunk_codec.h"

#include <algorithm>

namespace ddr {

namespace {

// Columnar body: field arrays in this fixed order. seq and time are
// monotone per chunk, so they delta well; the rest are raw varints whose
// win comes from transposition (runs of equal bytes).
void EncodeColumnar(const Event* events, uint64_t count, Encoder* encoder) {
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t seq = events[i].seq;
    encoder->PutZigzag64(static_cast<int64_t>(seq - prev));
    prev = seq;
  }
  prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t time = static_cast<uint64_t>(events[i].time);
    encoder->PutZigzag64(static_cast<int64_t>(time - prev));
    prev = time;
  }
  for (uint64_t i = 0; i < count; ++i) {
    encoder->PutVarint64(events[i].fiber);
  }
  for (uint64_t i = 0; i < count; ++i) {
    encoder->PutVarint64(events[i].node);
  }
  for (uint64_t i = 0; i < count; ++i) {
    encoder->PutFixed8(static_cast<uint8_t>(events[i].type));
  }
  for (uint64_t i = 0; i < count; ++i) {
    encoder->PutVarint64(events[i].obj);
  }
  for (uint64_t i = 0; i < count; ++i) {
    encoder->PutVarint64(events[i].value);
  }
  for (uint64_t i = 0; i < count; ++i) {
    encoder->PutVarint64(events[i].aux);
  }
  for (uint64_t i = 0; i < count; ++i) {
    encoder->PutVarint64(events[i].region);
  }
  for (uint64_t i = 0; i < count; ++i) {
    encoder->PutVarint64(events[i].bytes);
  }
}

Result<std::vector<Event>> DecodeColumnar(Decoder* decoder, uint64_t count) {
  std::vector<Event> events(static_cast<size_t>(count));
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(int64_t delta, decoder->GetZigzag64());
    prev += static_cast<uint64_t>(delta);
    events[i].seq = prev;
  }
  prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(int64_t delta, decoder->GetZigzag64());
    prev += static_cast<uint64_t>(delta);
    events[i].time = static_cast<SimTime>(prev);
  }
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(uint64_t fiber, decoder->GetVarint64());
    events[i].fiber = static_cast<FiberId>(fiber);
  }
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(uint64_t node, decoder->GetVarint64());
    events[i].node = static_cast<NodeId>(node);
  }
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(uint8_t type, decoder->GetFixed8());
    if (type > static_cast<uint8_t>(EventType::kNodeCrash)) {
      return InvalidArgumentError("unknown event type in columnar chunk");
    }
    events[i].type = static_cast<EventType>(type);
  }
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(uint64_t obj, decoder->GetVarint64());
    events[i].obj = static_cast<ObjectId>(obj);
  }
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(events[i].value, decoder->GetVarint64());
  }
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(events[i].aux, decoder->GetVarint64());
  }
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(uint64_t region, decoder->GetVarint64());
    events[i].region = static_cast<RegionId>(region);
  }
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(uint64_t bytes, decoder->GetVarint64());
    if (bytes > UINT32_MAX) {
      return InvalidArgumentError("event byte count overflows in chunk");
    }
    events[i].bytes = static_cast<uint32_t>(bytes);
  }
  return events;
}

}  // namespace

std::vector<uint8_t> EncodeEventChunkPayload(const Event* events,
                                             uint64_t count,
                                             uint64_t first_event,
                                             TraceFilter filter) {
  Encoder encoder;
  encoder.PutVarint64(first_event);
  encoder.PutVarint64(count);
  switch (filter) {
    case TraceFilter::kNone:
      for (uint64_t i = 0; i < count; ++i) {
        events[i].EncodeTo(&encoder);
      }
      break;
    case TraceFilter::kVarintDelta:
      EncodeColumnar(events, count, &encoder);
      break;
  }
  return encoder.TakeBuffer();
}

Result<std::vector<Event>> DecodeEventChunkPayload(
    std::span<const uint8_t> payload, TraceFilter filter,
    uint64_t expected_first, uint64_t expected_count) {
  Decoder decoder(payload.data(), payload.size());
  ASSIGN_OR_RETURN(uint64_t first, decoder.GetVarint64());
  ASSIGN_OR_RETURN(uint64_t count, decoder.GetVarint64());
  if (first != expected_first || count != expected_count) {
    return InvalidArgumentError("chunk payload disagrees with footer index");
  }
  // Decoders allocate event storage up front, so a crafted count must
  // fail here with a Status, never abort inside the allocation. Two
  // bounds: every encoded event occupies >= 10 payload bytes in either
  // layout (one byte per field), and no conforming writer produces chunks
  // past the format ceiling — which caps the worst crafted-but-decodable
  // payload (e.g. 1 GiB of zeros, a valid varint stream) at a sane
  // allocation.
  if (count > payload.size() / 10 || count > kMaxChunkEvents) {
    return InvalidArgumentError("chunk event count exceeds payload or ceiling");
  }
  std::vector<Event> events;
  switch (filter) {
    case TraceFilter::kNone: {
      events.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) {
        ASSIGN_OR_RETURN(Event event, Event::DecodeFrom(&decoder));
        events.push_back(event);
      }
      break;
    }
    case TraceFilter::kVarintDelta: {
      ASSIGN_OR_RETURN(events, DecodeColumnar(&decoder, count));
      break;
    }
  }
  if (!decoder.Done()) {
    return InvalidArgumentError("trailing bytes after chunk events");
  }
  return events;
}

}  // namespace ddr
