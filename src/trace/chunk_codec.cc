#include "src/trace/chunk_codec.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>

namespace ddr {

namespace {

// Columnar body: field arrays in this fixed order. seq and time are
// monotone per chunk, so they delta well; the rest are raw varints whose
// win comes from transposition (runs of equal bytes). The bulk span
// encoders reserve each column's worst case once instead of growing the
// buffer a byte at a time; output is byte-identical to the original
// per-value loops.
void EncodeColumnar(const Event* events, uint64_t count, Encoder* encoder) {
  const size_t n = static_cast<size_t>(count);
  encoder->PutZigzagDelta64Span(n, [events](size_t i) { return events[i].seq; });
  encoder->PutZigzagDelta64Span(
      n, [events](size_t i) { return static_cast<uint64_t>(events[i].time); });
  encoder->PutVarint64Span(
      n, [events](size_t i) { return uint64_t{events[i].fiber}; });
  encoder->PutVarint64Span(
      n, [events](size_t i) { return uint64_t{events[i].node}; });
  for (size_t i = 0; i < n; ++i) {
    encoder->PutFixed8(static_cast<uint8_t>(events[i].type));
  }
  encoder->PutVarint64Span(n, [events](size_t i) { return events[i].obj; });
  encoder->PutVarint64Span(n, [events](size_t i) { return events[i].value; });
  encoder->PutVarint64Span(n, [events](size_t i) { return events[i].aux; });
  encoder->PutVarint64Span(
      n, [events](size_t i) { return uint64_t{events[i].region}; });
  encoder->PutVarint64Span(
      n, [events](size_t i) { return uint64_t{events[i].bytes}; });
}

// Reference columnar decoder: one checked scalar Get per value. Kept as
// the ground truth the batched path is asserted against (DDR_DECODE_PATH
// =scalar and the *WithPath test hook route here).
Result<std::vector<Event>> DecodeColumnarScalar(Decoder* decoder,
                                                uint64_t count) {
  std::vector<Event> events(static_cast<size_t>(count));
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(int64_t delta, decoder->GetZigzag64());
    prev += static_cast<uint64_t>(delta);
    events[i].seq = prev;
  }
  prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(int64_t delta, decoder->GetZigzag64());
    prev += static_cast<uint64_t>(delta);
    events[i].time = static_cast<SimTime>(prev);
  }
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(uint64_t fiber, decoder->GetVarint64());
    events[i].fiber = static_cast<FiberId>(fiber);
  }
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(uint64_t node, decoder->GetVarint64());
    events[i].node = static_cast<NodeId>(node);
  }
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(uint8_t type, decoder->GetFixed8());
    if (type > static_cast<uint8_t>(EventType::kNodeCrash)) {
      return InvalidArgumentError("unknown event type in columnar chunk");
    }
    events[i].type = static_cast<EventType>(type);
  }
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(uint64_t obj, decoder->GetVarint64());
    events[i].obj = static_cast<ObjectId>(obj);
  }
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(events[i].value, decoder->GetVarint64());
  }
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(events[i].aux, decoder->GetVarint64());
  }
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(uint64_t region, decoder->GetVarint64());
    events[i].region = static_cast<RegionId>(region);
  }
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(uint64_t bytes, decoder->GetVarint64());
    if (bytes > UINT32_MAX) {
      return InvalidArgumentError("event byte count overflows in chunk");
    }
    events[i].bytes = static_cast<uint32_t>(bytes);
  }
  return events;
}

// Hot-path columnar decoder: bulk span primitives write each column
// straight into the preallocated Event vector. Produces the exact Event
// values and consumes the exact bytes of DecodeColumnarScalar on every
// decodable payload, and a Status (never a crash) on every corrupt one.
Result<std::vector<Event>> DecodeColumnarBatched(Decoder* decoder,
                                                 uint64_t count) {
  std::vector<Event> events(static_cast<size_t>(count));
  const size_t n = static_cast<size_t>(count);
  Event* e = events.data();
  RETURN_IF_ERROR(decoder->GetZigzagDelta64Span(
      n, [e](size_t i, uint64_t seq) { e[i].seq = seq; }));
  RETURN_IF_ERROR(decoder->GetZigzagDelta64Span(n, [e](size_t i, uint64_t t) {
    e[i].time = static_cast<SimTime>(t);
  }));
  RETURN_IF_ERROR(decoder->GetVarint64Span(n, [e](size_t i, uint64_t fiber) {
    e[i].fiber = static_cast<FiberId>(fiber);
  }));
  RETURN_IF_ERROR(decoder->GetVarint64Span(n, [e](size_t i, uint64_t node) {
    e[i].node = static_cast<NodeId>(node);
  }));
  // The type column is a contiguous fixed8 row: bounds-check it once and
  // validate in a tight scan instead of a checked GetFixed8 per event.
  ASSIGN_OR_RETURN(const uint8_t* types, decoder->GetBytes(n));
  for (size_t i = 0; i < n; ++i) {
    if (types[i] > static_cast<uint8_t>(EventType::kNodeCrash)) {
      return InvalidArgumentError("unknown event type in columnar chunk");
    }
    e[i].type = static_cast<EventType>(types[i]);
  }
  RETURN_IF_ERROR(decoder->GetVarint64Span(n, [e](size_t i, uint64_t obj) {
    e[i].obj = static_cast<ObjectId>(obj);
  }));
  RETURN_IF_ERROR(decoder->GetVarint64Span(
      n, [e](size_t i, uint64_t value) { e[i].value = value; }));
  RETURN_IF_ERROR(decoder->GetVarint64Span(
      n, [e](size_t i, uint64_t aux) { e[i].aux = aux; }));
  RETURN_IF_ERROR(decoder->GetVarint64Span(n, [e](size_t i, uint64_t region) {
    e[i].region = static_cast<RegionId>(region);
  }));
  // Range-validate the whole bytes column after the fact: fold the high
  // halves together instead of branching per value.
  uint64_t oversized = 0;
  RETURN_IF_ERROR(
      decoder->GetVarint64Span(n, [e, &oversized](size_t i, uint64_t bytes) {
        oversized |= bytes >> 32;
        e[i].bytes = static_cast<uint32_t>(bytes);
      }));
  if (oversized != 0) {
    return InvalidArgumentError("event byte count overflows in chunk");
  }
  return events;
}

}  // namespace

ColumnarDecodePath ActiveColumnarDecodePath() {
  static const ColumnarDecodePath path = [] {
    const char* env = std::getenv("DDR_DECODE_PATH");
    return (env != nullptr && std::string_view(env) == "scalar")
               ? ColumnarDecodePath::kScalar
               : ColumnarDecodePath::kBatched;
  }();
  return path;
}

std::vector<uint8_t> EncodeEventChunkPayload(const Event* events,
                                             uint64_t count,
                                             uint64_t first_event,
                                             TraceFilter filter) {
  Encoder encoder;
  encoder.PutVarint64(first_event);
  encoder.PutVarint64(count);
  switch (filter) {
    case TraceFilter::kNone:
      for (uint64_t i = 0; i < count; ++i) {
        events[i].EncodeTo(&encoder);
      }
      break;
    case TraceFilter::kVarintDelta:
      EncodeColumnar(events, count, &encoder);
      break;
  }
  return encoder.TakeBuffer();
}

Result<std::vector<Event>> DecodeEventChunkPayload(
    std::span<const uint8_t> payload, TraceFilter filter,
    uint64_t expected_first, uint64_t expected_count) {
  return DecodeEventChunkPayloadWithPath(payload, filter, expected_first,
                                         expected_count,
                                         ActiveColumnarDecodePath());
}

Result<std::vector<Event>> DecodeEventChunkPayloadWithPath(
    std::span<const uint8_t> payload, TraceFilter filter,
    uint64_t expected_first, uint64_t expected_count,
    ColumnarDecodePath path) {
  Decoder decoder(payload.data(), payload.size());
  ASSIGN_OR_RETURN(uint64_t first, decoder.GetVarint64());
  ASSIGN_OR_RETURN(uint64_t count, decoder.GetVarint64());
  if (first != expected_first || count != expected_count) {
    return InvalidArgumentError("chunk payload disagrees with footer index");
  }
  // Decoders allocate event storage up front, so a crafted count must
  // fail here with a Status, never abort inside the allocation. Two
  // bounds: every encoded event occupies >= 10 payload bytes in either
  // layout (one byte per field), and no conforming writer produces chunks
  // past the format ceiling — which caps the worst crafted-but-decodable
  // payload (e.g. 1 GiB of zeros, a valid varint stream) at a sane
  // allocation.
  if (count > payload.size() / 10 || count > kMaxChunkEvents) {
    return InvalidArgumentError("chunk event count exceeds payload or ceiling");
  }
  std::vector<Event> events;
  switch (filter) {
    case TraceFilter::kNone: {
      events.reserve(static_cast<size_t>(count));
      for (uint64_t i = 0; i < count; ++i) {
        ASSIGN_OR_RETURN(Event event, Event::DecodeFrom(&decoder));
        events.push_back(event);
      }
      break;
    }
    case TraceFilter::kVarintDelta: {
      if (path == ColumnarDecodePath::kBatched) {
        ASSIGN_OR_RETURN(events, DecodeColumnarBatched(&decoder, count));
      } else {
        ASSIGN_OR_RETURN(events, DecodeColumnarScalar(&decoder, count));
      }
      break;
    }
  }
  if (!decoder.Done()) {
    return InvalidArgumentError("trailing bytes after chunk events");
  }
  return events;
}

}  // namespace ddr
