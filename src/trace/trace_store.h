// TraceStore: the one-call surface for persisting recordings.
//
//   TraceStore::Save("bug.ddrt", recording);
//   ASSIGN_OR_RETURN(RecordedExecution loaded, TraceStore::Load("bug.ddrt"));
//
// Save/Load round-trip bit-identically: the reloaded recording replays to
// the same failure and output fingerprints as the in-memory original
// (asserted by tests/trace_test.cc). Use TraceReader directly for partial
// access (metadata only, event ranges, checkpoints).

#ifndef SRC_TRACE_TRACE_STORE_H_
#define SRC_TRACE_TRACE_STORE_H_

#include <string>

#include "src/trace/trace_reader.h"
#include "src/trace/trace_writer.h"

namespace ddr {

class TraceStore {
 public:
  static Status Save(const std::string& path, const RecordedExecution& recording,
                     const TraceWriteOptions& options = {});

  // `reader_options` selects the I/O backend (stream/pread/mmap) and an
  // optional shared decoded-chunk cache for the read.
  static Result<RecordedExecution> Load(
      const std::string& path, const TraceReaderOptions& reader_options = {});

  // Loads just the checkpoint index (small, no event chunks touched).
  static Result<CheckpointIndex> LoadCheckpoints(
      const std::string& path, const TraceReaderOptions& reader_options = {});

  // Full structural + CRC + checkpoint verification.
  static Status Verify(const std::string& path,
                       const TraceReaderOptions& reader_options = {});
};

}  // namespace ddr

#endif  // SRC_TRACE_TRACE_STORE_H_
