#include "src/trace/trace_reader.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/trace/chunk_codec.h"
#include "src/util/hash.h"
#include "src/util/string_util.h"

namespace ddr {

namespace {

// Sanity bound for section payloads: a section larger than the file is
// corrupt framing, not a big trace.
Status CheckSize(uint64_t claimed, uint64_t file_size, const char* what) {
  if (claimed > file_size) {
    return InvalidArgumentError(StrPrintf(
        "trace %s size %llu exceeds file size %llu", what,
        static_cast<unsigned long long>(claimed),
        static_cast<unsigned long long>(file_size)));
  }
  return OkStatus();
}

}  // namespace

TraceReader::TraceReader(TraceReader&& other) noexcept
    : path_(std::move(other.path_)),
      file_(std::move(other.file_)),
      cache_(std::move(other.cache_)),
      cache_file_id_(other.cache_file_id_),
      base_offset_(other.base_offset_),
      file_size_(other.file_size_),
      bytes_read_(other.bytes_read_.load(std::memory_order_relaxed)),
      cache_hits_(other.cache_hits_.load(std::memory_order_relaxed)),
      cache_misses_(other.cache_misses_.load(std::memory_order_relaxed)),
      footer_(std::move(other.footer_)),
      metadata_(std::move(other.metadata_)),
      snapshot_(std::move(other.snapshot_)),
      checkpoints_(std::move(other.checkpoints_)) {}

TraceReader& TraceReader::operator=(TraceReader&& other) noexcept {
  if (this != &other) {
    path_ = std::move(other.path_);
    file_ = std::move(other.file_);
    cache_ = std::move(other.cache_);
    cache_file_id_ = other.cache_file_id_;
    base_offset_ = other.base_offset_;
    file_size_ = other.file_size_;
    bytes_read_.store(other.bytes_read_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    cache_hits_.store(other.cache_hits_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    cache_misses_.store(other.cache_misses_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    footer_ = std::move(other.footer_);
    metadata_ = std::move(other.metadata_);
    snapshot_ = std::move(other.snapshot_);
    checkpoints_ = std::move(other.checkpoints_);
  }
  return *this;
}

Result<TraceReader> TraceReader::Open(const std::string& path,
                                      const TraceReaderOptions& options) {
  return OpenAt(path, /*base_offset=*/0, /*image_size=*/0, options);
}

Result<TraceReader> TraceReader::OpenAt(const std::string& path,
                                        uint64_t base_offset,
                                        uint64_t image_size,
                                        const TraceReaderOptions& options) {
  ASSIGN_OR_RETURN(std::shared_ptr<RandomAccessFile> file,
                   RandomAccessFile::Open(path, options.io));
  return OpenImpl(std::move(file), base_offset, image_size, options.cache);
}

Result<TraceReader> TraceReader::OpenShared(
    std::shared_ptr<RandomAccessFile> file, uint64_t base_offset,
    uint64_t image_size, std::shared_ptr<ChunkCache> cache) {
  if (file == nullptr) {
    return InvalidArgumentError("OpenShared requires an open file handle");
  }
  return OpenImpl(std::move(file), base_offset, image_size, std::move(cache));
}

Result<TraceReader> TraceReader::OpenImpl(std::shared_ptr<RandomAccessFile> file,
                                          uint64_t base_offset,
                                          uint64_t image_size,
                                          std::shared_ptr<ChunkCache> cache) {
  TraceReader reader;
  reader.path_ = file->path();
  reader.base_offset_ = base_offset;
  reader.file_ = std::move(file);
  reader.cache_ = std::move(cache);
  // Cache entries are namespaced by the open handle, not the path: a
  // path can be atomically replaced, a handle cannot change contents.
  reader.cache_file_id_ = reader.file_->id();
  const uint64_t total_size = reader.file_->size();
  if (base_offset > total_size) {
    return InvalidArgumentError("trace image offset past end of file: " +
                                reader.path_);
  }
  reader.file_size_ =
      image_size == 0 ? total_size - base_offset : image_size;
  // Subtraction form: a crafted huge image_size must not wrap the sum.
  if (reader.file_size_ > total_size - base_offset) {
    return InvalidArgumentError("trace image extends past end of file: " +
                                reader.path_);
  }
  if (reader.file_size_ < kTraceHeaderBytes + kTraceTrailerBytes) {
    return InvalidArgumentError("trace file too small: " + reader.path_);
  }

  // Header.
  std::vector<uint8_t> scratch;
  {
    ASSIGN_OR_RETURN(
        std::span<const uint8_t> header,
        reader.file_->Read(base_offset, kTraceHeaderBytes, &scratch));
    reader.bytes_read_.fetch_add(header.size(), std::memory_order_relaxed);
    Decoder decoder(header.data(), header.size());
    ASSIGN_OR_RETURN(uint32_t magic, decoder.GetFixed32());
    if (magic != kTraceFileMagic) {
      return InvalidArgumentError("bad trace file magic");
    }
    ASSIGN_OR_RETURN(uint32_t version, decoder.GetFixed32());
    if (version != kTraceFormatVersion &&
        version != kTraceFormatVersionFiltered) {
      return InvalidArgumentError(
          StrPrintf("unsupported trace format version %u", version));
    }
  }

  // Trailer -> footer.
  uint64_t footer_offset = 0;
  {
    ASSIGN_OR_RETURN(
        std::span<const uint8_t> trailer,
        reader.file_->Read(base_offset + reader.file_size_ - kTraceTrailerBytes,
                           kTraceTrailerBytes, &scratch));
    reader.bytes_read_.fetch_add(trailer.size(), std::memory_order_relaxed);
    Decoder decoder(trailer.data(), trailer.size());
    ASSIGN_OR_RETURN(footer_offset, decoder.GetFixed64());
    ASSIGN_OR_RETURN(uint32_t magic, decoder.GetFixed32());
    if (magic != kTraceTrailerMagic) {
      return InvalidArgumentError("bad trace trailer magic (truncated file?)");
    }
  }
  RETURN_IF_ERROR(CheckSize(footer_offset, reader.file_size_, "footer offset"));

  ASSIGN_OR_RETURN(TraceSectionPayload footer_bytes,
                   reader.ReadSection(footer_offset, TraceSection::kFooter));
  ASSIGN_OR_RETURN(reader.footer_, TraceFooter::Decode(footer_bytes.view));

  ASSIGN_OR_RETURN(TraceSectionPayload meta_bytes,
                   reader.ReadSection(reader.footer_.metadata_offset,
                                      TraceSection::kMetadata));
  ASSIGN_OR_RETURN(reader.metadata_, TraceMetadata::Decode(meta_bytes.view));

  ASSIGN_OR_RETURN(TraceSectionPayload snapshot_bytes,
                   reader.ReadSection(reader.footer_.snapshot_offset,
                                      TraceSection::kSnapshot));
  ASSIGN_OR_RETURN(reader.snapshot_,
                   FailureSnapshot::Decode(snapshot_bytes.view));

  ASSIGN_OR_RETURN(TraceSectionPayload checkpoint_bytes,
                   reader.ReadSection(reader.footer_.checkpoint_offset,
                                      TraceSection::kCheckpointIndex));
  ASSIGN_OR_RETURN(reader.checkpoints_,
                   CheckpointIndex::Decode(checkpoint_bytes.view));

  return reader;
}

Result<TraceSectionPayload> TraceReader::ReadSection(
    uint64_t offset, TraceSection expected_kind) const {
  return ReadTraceSection(*file_, base_offset_, offset, file_size_,
                          expected_kind, &bytes_read_);
}

Result<ChunkCache::EventsPtr> TraceReader::DecodeChunk(
    size_t chunk_index) const {
  const TraceChunkInfo& chunk = footer_.chunks[chunk_index];
  const ChunkKey key{cache_file_id_, base_offset_, chunk_index};
  if (cache_ != nullptr) {
    if (ChunkCache::EventsPtr cached = cache_->Lookup(key)) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return cached;
    }
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  ASSIGN_OR_RETURN(TraceSectionPayload payload,
                   ReadSection(chunk.file_offset, TraceSection::kEventChunk));
  ASSIGN_OR_RETURN(
      std::vector<Event> events,
      DecodeEventChunkPayload(payload.view, payload.filter, chunk.first_event,
                              chunk.event_count));
  auto decoded = std::make_shared<const std::vector<Event>>(std::move(events));
  if (cache_ != nullptr) {
    cache_->Insert(key, decoded);
  }
  return ChunkCache::EventsPtr(std::move(decoded));
}

Result<EventLog> TraceReader::ReadAllEvents() const {
  EventLog log;
  // One up-front reservation from the footer's event count. The clamp
  // bounds what a crafted footer can demand before any chunk has decoded
  // (4M events, the same order as the documented worst-case section
  // allocation); genuinely larger traces grow geometrically past it via
  // AppendAll — a handful of reallocations total, never one per chunk.
  log.Reserve(static_cast<size_t>(
      std::min<uint64_t>(footer_.total_events, kMaxChunkEvents)));
  for (size_t i = 0; i < footer_.chunks.size(); ++i) {
    ASSIGN_OR_RETURN(ChunkCache::EventsPtr events, DecodeChunk(i));
    log.AppendAll(events->data(), events->size());
  }
  if (log.size() != footer_.total_events) {
    return InvalidArgumentError("decoded event count disagrees with footer");
  }
  return log;
}

Result<std::vector<Event>> TraceReader::ReadEvents(uint64_t first_event,
                                                   uint64_t count) const {
  std::vector<Event> out;
  if (count == 0) {
    return out;
  }
  // Saturating end: first_event + count may wrap for "rest of the trace"
  // style requests.
  const uint64_t end = first_event + count < first_event
                           ? std::numeric_limits<uint64_t>::max()
                           : first_event + count;
  out.reserve(static_cast<size_t>(std::min(
      {count, footer_.total_events, kMaxChunkEvents})));
  for (size_t i = 0; i < footer_.chunks.size(); ++i) {
    const TraceChunkInfo& chunk = footer_.chunks[i];
    const uint64_t chunk_end = chunk.first_event + chunk.event_count;
    if (chunk_end <= first_event || chunk.first_event >= end) {
      continue;  // no overlap: this chunk is never read from disk
    }
    ASSIGN_OR_RETURN(ChunkCache::EventsPtr events, DecodeChunk(i));
    for (uint64_t j = 0; j < events->size(); ++j) {
      const uint64_t index = chunk.first_event + j;
      if (index >= first_event && index < end) {
        out.push_back((*events)[static_cast<size_t>(j)]);
      }
    }
  }
  return out;
}

Result<RecordedExecution> TraceReader::ReadRecordedExecution() const {
  RecordedExecution recording;
  recording.model = metadata_.model;
  ASSIGN_OR_RETURN(recording.log, ReadAllEvents());
  recording.snapshot = snapshot_;
  recording.recorded_bytes = metadata_.recorded_bytes;
  recording.overhead_nanos = metadata_.overhead_nanos;
  recording.cpu_nanos = metadata_.cpu_nanos;
  recording.intercepted_events = metadata_.intercepted_events;
  recording.recorded_events = metadata_.recorded_events;
  return recording;
}

Status TraceReader::Verify() const {
  // Chunk table: contiguous coverage of [0, total_events).
  uint64_t next_event = 0;
  for (const TraceChunkInfo& chunk : footer_.chunks) {
    if (chunk.first_event != next_event) {
      return InvalidArgumentError(
          StrPrintf("chunk table gap at event %llu",
                    static_cast<unsigned long long>(next_event)));
    }
    next_event += chunk.event_count;
  }
  if (next_event != footer_.total_events) {
    return InvalidArgumentError("chunk table does not cover all events");
  }
  if (metadata_.event_count != footer_.total_events) {
    return InvalidArgumentError("metadata event count disagrees with footer");
  }

  // Decode everything (exercises every CRC and every event decoder) and
  // recompute checkpoint prefix fingerprints + cursor state. Note: chunks
  // already resident in a shared cache are trusted — their CRC was checked
  // when they were decoded from disk.
  ASSIGN_OR_RETURN(EventLog log, ReadAllEvents());
  const CheckpointIndex recomputed = BuildCheckpointIndex(
      log, checkpoints_.interval, metadata_.events_per_chunk,
      checkpoints_.full_stream);
  if (recomputed.checkpoints.size() != checkpoints_.checkpoints.size()) {
    return InvalidArgumentError("checkpoint count disagrees with log");
  }
  for (size_t i = 0; i < recomputed.checkpoints.size(); ++i) {
    const ReplayCheckpoint& stored = checkpoints_.checkpoints[i];
    const ReplayCheckpoint& fresh = recomputed.checkpoints[i];
    if (stored.event_index != fresh.event_index ||
        stored.prefix_fingerprint != fresh.prefix_fingerprint ||
        stored.schedule_cursor != fresh.schedule_cursor ||
        stored.rng_cursor != fresh.rng_cursor ||
        stored.input_cursor != fresh.input_cursor ||
        stored.read_cursor != fresh.read_cursor) {
      return InvalidArgumentError(StrPrintf(
          "checkpoint %zu disagrees with recomputation from the log", i));
    }
  }
  return OkStatus();
}

}  // namespace ddr
