#include "src/trace/trace_reader.h"

#include <algorithm>
#include <limits>

#include "src/trace/chunk_codec.h"
#include "src/util/hash.h"
#include "src/util/string_util.h"

namespace ddr {

namespace {

// Sanity bound for section payloads: a section larger than the file is
// corrupt framing, not a big trace.
Status CheckSize(uint64_t claimed, uint64_t file_size, const char* what) {
  if (claimed > file_size) {
    return InvalidArgumentError(StrPrintf(
        "trace %s size %llu exceeds file size %llu", what,
        static_cast<unsigned long long>(claimed),
        static_cast<unsigned long long>(file_size)));
  }
  return OkStatus();
}

}  // namespace

Result<TraceReader> TraceReader::Open(const std::string& path) {
  return OpenAt(path, /*base_offset=*/0, /*image_size=*/0);
}

Result<TraceReader> TraceReader::OpenAt(const std::string& path,
                                        uint64_t base_offset,
                                        uint64_t image_size) {
  TraceReader reader;
  reader.path_ = path;
  reader.base_offset_ = base_offset;
  reader.stream_.open(path, std::ios::binary);
  if (!reader.stream_) {
    return NotFoundError("cannot open trace file: " + path);
  }
  reader.stream_.seekg(0, std::ios::end);
  const uint64_t total_size = static_cast<uint64_t>(reader.stream_.tellg());
  if (base_offset > total_size) {
    return InvalidArgumentError("trace image offset past end of file: " + path);
  }
  reader.file_size_ =
      image_size == 0 ? total_size - base_offset : image_size;
  // Subtraction form: a crafted huge image_size must not wrap the sum.
  if (reader.file_size_ > total_size - base_offset) {
    return InvalidArgumentError("trace image extends past end of file: " + path);
  }
  if (reader.file_size_ < kTraceHeaderBytes + kTraceTrailerBytes) {
    return InvalidArgumentError("trace file too small: " + path);
  }

  // Header.
  std::vector<uint8_t> header(kTraceHeaderBytes);
  reader.stream_.seekg(static_cast<std::streamoff>(base_offset));
  reader.stream_.read(reinterpret_cast<char*>(header.data()),
                      static_cast<std::streamsize>(header.size()));
  if (!reader.stream_) {
    return UnavailableError("short read on trace header");
  }
  reader.bytes_read_ += header.size();
  {
    Decoder decoder(header);
    ASSIGN_OR_RETURN(uint32_t magic, decoder.GetFixed32());
    if (magic != kTraceFileMagic) {
      return InvalidArgumentError("bad trace file magic");
    }
    ASSIGN_OR_RETURN(uint32_t version, decoder.GetFixed32());
    if (version != kTraceFormatVersion &&
        version != kTraceFormatVersionFiltered) {
      return InvalidArgumentError(
          StrPrintf("unsupported trace format version %u", version));
    }
  }

  // Trailer -> footer.
  std::vector<uint8_t> trailer(kTraceTrailerBytes);
  reader.stream_.seekg(static_cast<std::streamoff>(
      base_offset + reader.file_size_ - kTraceTrailerBytes));
  reader.stream_.read(reinterpret_cast<char*>(trailer.data()),
                      static_cast<std::streamsize>(trailer.size()));
  if (!reader.stream_) {
    return UnavailableError("short read on trace trailer");
  }
  reader.bytes_read_ += trailer.size();
  uint64_t footer_offset = 0;
  {
    Decoder decoder(trailer);
    ASSIGN_OR_RETURN(footer_offset, decoder.GetFixed64());
    ASSIGN_OR_RETURN(uint32_t magic, decoder.GetFixed32());
    if (magic != kTraceTrailerMagic) {
      return InvalidArgumentError("bad trace trailer magic (truncated file?)");
    }
  }
  RETURN_IF_ERROR(CheckSize(footer_offset, reader.file_size_, "footer offset"));

  ASSIGN_OR_RETURN(std::vector<uint8_t> footer_bytes,
                   reader.ReadSection(footer_offset, TraceSection::kFooter));
  ASSIGN_OR_RETURN(reader.footer_, TraceFooter::Decode(footer_bytes));

  ASSIGN_OR_RETURN(
      std::vector<uint8_t> meta_bytes,
      reader.ReadSection(reader.footer_.metadata_offset, TraceSection::kMetadata));
  ASSIGN_OR_RETURN(reader.metadata_, TraceMetadata::Decode(meta_bytes));

  ASSIGN_OR_RETURN(
      std::vector<uint8_t> snapshot_bytes,
      reader.ReadSection(reader.footer_.snapshot_offset, TraceSection::kSnapshot));
  ASSIGN_OR_RETURN(reader.snapshot_, FailureSnapshot::Decode(snapshot_bytes));

  ASSIGN_OR_RETURN(std::vector<uint8_t> checkpoint_bytes,
                   reader.ReadSection(reader.footer_.checkpoint_offset,
                                      TraceSection::kCheckpointIndex));
  ASSIGN_OR_RETURN(reader.checkpoints_,
                   CheckpointIndex::Decode(checkpoint_bytes));

  return reader;
}

Result<std::vector<uint8_t>> TraceReader::ReadSection(uint64_t offset,
                                                      TraceSection expected_kind,
                                                      TraceFilter* filter) {
  return ReadTraceSectionFromStream(stream_, base_offset_, offset, file_size_,
                                    expected_kind, filter, &bytes_read_);
}

Result<std::vector<Event>> TraceReader::DecodeChunk(const TraceChunkInfo& chunk) {
  TraceFilter filter = TraceFilter::kNone;
  ASSIGN_OR_RETURN(
      std::vector<uint8_t> payload,
      ReadSection(chunk.file_offset, TraceSection::kEventChunk, &filter));
  return DecodeEventChunkPayload(payload, filter, chunk.first_event,
                                 chunk.event_count);
}

Result<EventLog> TraceReader::ReadAllEvents() {
  EventLog log;
  for (const TraceChunkInfo& chunk : footer_.chunks) {
    ASSIGN_OR_RETURN(std::vector<Event> events, DecodeChunk(chunk));
    for (const Event& event : events) {
      log.Append(event);
    }
  }
  if (log.size() != footer_.total_events) {
    return InvalidArgumentError("decoded event count disagrees with footer");
  }
  return log;
}

Result<std::vector<Event>> TraceReader::ReadEvents(uint64_t first_event,
                                                   uint64_t count) {
  std::vector<Event> out;
  if (count == 0) {
    return out;
  }
  // Saturating end: first_event + count may wrap for "rest of the trace"
  // style requests.
  const uint64_t end = first_event + count < first_event
                           ? std::numeric_limits<uint64_t>::max()
                           : first_event + count;
  for (const TraceChunkInfo& chunk : footer_.chunks) {
    const uint64_t chunk_end = chunk.first_event + chunk.event_count;
    if (chunk_end <= first_event || chunk.first_event >= end) {
      continue;  // no overlap: this chunk is never read from disk
    }
    ASSIGN_OR_RETURN(std::vector<Event> events, DecodeChunk(chunk));
    for (uint64_t i = 0; i < events.size(); ++i) {
      const uint64_t index = chunk.first_event + i;
      if (index >= first_event && index < end) {
        out.push_back(events[static_cast<size_t>(i)]);
      }
    }
  }
  return out;
}

Result<RecordedExecution> TraceReader::ReadRecordedExecution() {
  RecordedExecution recording;
  recording.model = metadata_.model;
  ASSIGN_OR_RETURN(recording.log, ReadAllEvents());
  recording.snapshot = snapshot_;
  recording.recorded_bytes = metadata_.recorded_bytes;
  recording.overhead_nanos = metadata_.overhead_nanos;
  recording.cpu_nanos = metadata_.cpu_nanos;
  recording.intercepted_events = metadata_.intercepted_events;
  recording.recorded_events = metadata_.recorded_events;
  return recording;
}

Status TraceReader::Verify() {
  // Chunk table: contiguous coverage of [0, total_events).
  uint64_t next_event = 0;
  for (const TraceChunkInfo& chunk : footer_.chunks) {
    if (chunk.first_event != next_event) {
      return InvalidArgumentError(
          StrPrintf("chunk table gap at event %llu",
                    static_cast<unsigned long long>(next_event)));
    }
    next_event += chunk.event_count;
  }
  if (next_event != footer_.total_events) {
    return InvalidArgumentError("chunk table does not cover all events");
  }
  if (metadata_.event_count != footer_.total_events) {
    return InvalidArgumentError("metadata event count disagrees with footer");
  }

  // Decode everything (exercises every CRC and every event decoder) and
  // recompute checkpoint prefix fingerprints + cursor state.
  ASSIGN_OR_RETURN(EventLog log, ReadAllEvents());
  const CheckpointIndex recomputed = BuildCheckpointIndex(
      log, checkpoints_.interval, metadata_.events_per_chunk,
      checkpoints_.full_stream);
  if (recomputed.checkpoints.size() != checkpoints_.checkpoints.size()) {
    return InvalidArgumentError("checkpoint count disagrees with log");
  }
  for (size_t i = 0; i < recomputed.checkpoints.size(); ++i) {
    const ReplayCheckpoint& stored = checkpoints_.checkpoints[i];
    const ReplayCheckpoint& fresh = recomputed.checkpoints[i];
    if (stored.event_index != fresh.event_index ||
        stored.prefix_fingerprint != fresh.prefix_fingerprint ||
        stored.schedule_cursor != fresh.schedule_cursor ||
        stored.rng_cursor != fresh.rng_cursor ||
        stored.input_cursor != fresh.input_cursor ||
        stored.read_cursor != fresh.read_cursor) {
      return InvalidArgumentError(StrPrintf(
          "checkpoint %zu disagrees with recomputation from the log", i));
    }
  }
  return OkStatus();
}

}  // namespace ddr
