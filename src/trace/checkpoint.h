// Checkpoint index for partial replay.
//
// Every N log events the trace writer records a ReplayCheckpoint: where the
// replay director's cursors stand after consuming the log prefix, plus a
// running fingerprint of that prefix. A replayer fast-forwarding to a
// checkpoint re-executes the prefix with observation disabled and uses the
// stored cursor state + fingerprint to verify it reached exactly the
// recorded point before it starts collecting the suffix (the Huselius-style
// "replay starting point").
//
// In this simulated substrate there is no process-image snapshot, so a
// checkpoint does not eliminate prefix re-execution — it eliminates prefix
// *observation* (trace sinks, analysis, event materialization) and, on the
// storage side, lets `ddr-trace dump`/readers decode only the chunks at or
// after the checkpoint.

#ifndef SRC_TRACE_CHECKPOINT_H_
#define SRC_TRACE_CHECKPOINT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/record/event_log.h"
#include "src/util/codec.h"
#include "src/util/hash.h"
#include "src/util/status.h"

namespace ddr {

struct ReplayCheckpoint {
  // The checkpoint sits *before* log event `event_index`: the prefix is
  // events [0, event_index).
  uint64_t event_index = 0;
  // Chunk that holds event `event_index` in the trace file (suffix decode
  // can start there).
  uint64_t chunk_index = 0;
  // Original-run sequence number of the first post-checkpoint event. For
  // subset logs (value/RCSE) this is how the replayed full event stream is
  // aligned with the log position.
  uint64_t resume_seq = 0;
  // Running semantic fingerprint of the log prefix.
  uint64_t prefix_fingerprint = 0;
  // Virtual time of the last prefix event (diagnostics).
  uint64_t virtual_time = 0;

  // Replay-director cursor state after consuming the prefix.
  uint64_t schedule_cursor = 0;  // context switches consumed
  uint64_t rng_cursor = 0;       // rng draws consumed
  uint64_t input_cursor = 0;     // input values consumed (all sources)
  uint64_t read_cursor = 0;      // shared-read values consumed (all cells)

  void EncodeTo(Encoder* encoder) const;
  static Result<ReplayCheckpoint> DecodeFrom(Decoder* decoder);
};

struct CheckpointIndex {
  // True when the log the checkpoints were built from is a full-fidelity
  // event stream (every intercepted event recorded). Only then can a
  // replayed stream be checked against prefix_fingerprint byte-for-byte.
  bool full_stream = false;
  // Checkpoint interval the writer used (log events).
  uint64_t interval = 0;
  std::vector<ReplayCheckpoint> checkpoints;

  bool empty() const { return checkpoints.empty(); }

  // Latest checkpoint with event_index <= target, or nullptr if none
  // (replay must start from event zero).
  const ReplayCheckpoint* NearestBefore(uint64_t target_event) const;

  std::vector<uint8_t> Encode() const;
  static Result<CheckpointIndex> Decode(std::span<const uint8_t> bytes);
};

// Incremental checkpoint construction: feed events one at a time (the
// streaming trace writer calls Observe as chunks flush) and collect the
// index when the recording ends. Equivalent to BuildCheckpointIndex over
// the same event sequence.
class CheckpointBuilder {
 public:
  // `interval` 0 disables checkpointing; `events_per_chunk` mirrors the
  // writer's chunking so each checkpoint knows which chunk holds its
  // resume event.
  CheckpointBuilder(uint64_t interval, uint64_t events_per_chunk)
      : interval_(interval), events_per_chunk_(events_per_chunk) {
    index_.interval = interval;
  }

  void Observe(const Event& event);

  // Events observed so far.
  uint64_t event_count() const { return next_event_; }

  // Finalizes and returns the index. `full_stream` is only knowable at the
  // end of a recording (it compares intercepted vs recorded counts).
  CheckpointIndex Finish(bool full_stream) {
    index_.full_stream = full_stream;
    return std::move(index_);
  }

 private:
  uint64_t interval_ = 0;
  uint64_t events_per_chunk_ = 0;
  uint64_t next_event_ = 0;
  uint64_t last_virtual_time_ = 0;
  Fingerprint prefix_fp_;
  ReplayCheckpoint cursors_;  // running cursor state (event_index unused)
  CheckpointIndex index_;
};

// Builds the index from a log: one checkpoint every `interval` events
// (interval 0 disables checkpointing). `events_per_chunk` mirrors the
// writer's chunking so each checkpoint knows its chunk.
CheckpointIndex BuildCheckpointIndex(const EventLog& log, uint64_t interval,
                                     uint64_t events_per_chunk,
                                     bool full_stream);

}  // namespace ddr

#endif  // SRC_TRACE_CHECKPOINT_H_
