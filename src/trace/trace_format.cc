#include "src/trace/trace_format.h"

#include <algorithm>

#include "src/trace/block_compress.h"
#include "src/util/crc32.h"
#include "src/util/string_util.h"

namespace ddr {

std::vector<uint8_t> TraceMetadata::Encode() const {
  Encoder encoder;
  encoder.PutString(model);
  encoder.PutString(scenario);
  encoder.PutVarint64(event_count);
  encoder.PutVarint64(events_per_chunk);
  encoder.PutVarint64(recorded_bytes);
  encoder.PutZigzag64(overhead_nanos);
  encoder.PutZigzag64(cpu_nanos);
  encoder.PutVarint64(intercepted_events);
  encoder.PutVarint64(recorded_events);
  encoder.PutDouble(original_wall_seconds);
  return encoder.TakeBuffer();
}

Result<TraceMetadata> TraceMetadata::Decode(std::span<const uint8_t> bytes) {
  Decoder decoder(bytes.data(), bytes.size());
  TraceMetadata meta;
  ASSIGN_OR_RETURN(meta.model, decoder.GetString());
  ASSIGN_OR_RETURN(meta.scenario, decoder.GetString());
  ASSIGN_OR_RETURN(meta.event_count, decoder.GetVarint64());
  ASSIGN_OR_RETURN(meta.events_per_chunk, decoder.GetVarint64());
  ASSIGN_OR_RETURN(meta.recorded_bytes, decoder.GetVarint64());
  ASSIGN_OR_RETURN(meta.overhead_nanos, decoder.GetZigzag64());
  ASSIGN_OR_RETURN(meta.cpu_nanos, decoder.GetZigzag64());
  ASSIGN_OR_RETURN(meta.intercepted_events, decoder.GetVarint64());
  ASSIGN_OR_RETURN(meta.recorded_events, decoder.GetVarint64());
  ASSIGN_OR_RETURN(meta.original_wall_seconds, decoder.GetDouble());
  if (!decoder.Done()) {
    return InvalidArgumentError("trailing bytes after trace metadata");
  }
  return meta;
}

std::vector<uint8_t> TraceFooter::Encode() const {
  Encoder encoder;
  encoder.PutFixed64(metadata_offset);
  encoder.PutFixed64(snapshot_offset);
  encoder.PutFixed64(checkpoint_offset);
  encoder.PutVarint64(total_events);
  encoder.PutVarint64(chunks.size());
  for (const TraceChunkInfo& chunk : chunks) {
    encoder.PutVarint64(chunk.file_offset);
    encoder.PutVarint64(chunk.first_event);
    encoder.PutVarint64(chunk.event_count);
  }
  return encoder.TakeBuffer();
}

Result<TraceFooter> TraceFooter::Decode(std::span<const uint8_t> bytes) {
  Decoder decoder(bytes.data(), bytes.size());
  TraceFooter footer;
  ASSIGN_OR_RETURN(footer.metadata_offset, decoder.GetFixed64());
  ASSIGN_OR_RETURN(footer.snapshot_offset, decoder.GetFixed64());
  ASSIGN_OR_RETURN(footer.checkpoint_offset, decoder.GetFixed64());
  ASSIGN_OR_RETURN(footer.total_events, decoder.GetVarint64());
  ASSIGN_OR_RETURN(uint64_t chunk_count, decoder.GetVarint64());
  for (uint64_t i = 0; i < chunk_count; ++i) {
    TraceChunkInfo chunk;
    ASSIGN_OR_RETURN(chunk.file_offset, decoder.GetVarint64());
    ASSIGN_OR_RETURN(chunk.first_event, decoder.GetVarint64());
    ASSIGN_OR_RETURN(chunk.event_count, decoder.GetVarint64());
    footer.chunks.push_back(chunk);
  }
  if (!decoder.Done()) {
    return InvalidArgumentError("trailing bytes after trace footer");
  }
  return footer;
}

std::vector<uint8_t> EncodeTraceSection(TraceSection kind,
                                        const std::vector<uint8_t>& payload,
                                        bool allow_compress,
                                        TraceFilter filter) {
  TraceCodec codec = TraceCodec::kRaw;
  const std::vector<uint8_t>* stored = &payload;
  std::vector<uint8_t> compressed;
  if (allow_compress && !payload.empty()) {
    compressed = CompressBlock(payload);
    if (compressed.size() < payload.size()) {
      codec = TraceCodec::kDdrz;
      stored = &compressed;
    }
  }

  Encoder encoder;
  encoder.PutFixed8(static_cast<uint8_t>(kind));
  encoder.PutFixed8(static_cast<uint8_t>(
      (static_cast<uint8_t>(filter) << 4) | static_cast<uint8_t>(codec)));
  encoder.PutVarint64(payload.size());
  encoder.PutVarint64(stored->size());
  std::vector<uint8_t> out = encoder.TakeBuffer();
  out.insert(out.end(), stored->begin(), stored->end());

  const uint32_t crc = Crc32(stored->data(), stored->size());
  Encoder crc_encoder;
  crc_encoder.PutFixed32(crc);
  const std::vector<uint8_t>& crc_bytes = crc_encoder.buffer();
  out.insert(out.end(), crc_bytes.begin(), crc_bytes.end());
  return out;
}

uint64_t AppendTraceSection(std::vector<uint8_t>* out, TraceSection kind,
                            const std::vector<uint8_t>& payload,
                            bool allow_compress, TraceFilter filter) {
  const uint64_t offset = out->size();
  const std::vector<uint8_t> section =
      EncodeTraceSection(kind, payload, allow_compress, filter);
  out->insert(out->end(), section.begin(), section.end());
  return offset;
}

Result<TraceSectionHeader> DecodeTraceSectionHeader(Decoder* decoder) {
  TraceSectionHeader header;
  ASSIGN_OR_RETURN(uint8_t kind, decoder->GetFixed8());
  if (kind < static_cast<uint8_t>(TraceSection::kMetadata) ||
      kind > static_cast<uint8_t>(TraceSection::kCorpusIndex)) {
    return InvalidArgumentError("unknown trace section kind");
  }
  header.kind = static_cast<TraceSection>(kind);
  ASSIGN_OR_RETURN(uint8_t packed, decoder->GetFixed8());
  const uint8_t codec = packed & 0x0F;
  const uint8_t filter = packed >> 4;
  if (codec > static_cast<uint8_t>(TraceCodec::kDdrz)) {
    return InvalidArgumentError("unknown trace section codec");
  }
  if (filter > static_cast<uint8_t>(TraceFilter::kVarintDelta)) {
    return InvalidArgumentError("unknown trace section filter");
  }
  header.codec = static_cast<TraceCodec>(codec);
  header.filter = static_cast<TraceFilter>(filter);
  ASSIGN_OR_RETURN(header.uncompressed_size, decoder->GetVarint64());
  ASSIGN_OR_RETURN(header.stored_size, decoder->GetVarint64());
  return header;
}

namespace {

// Section framing never exceeds kind + filter/codec + two max-width varints.
constexpr size_t kMaxSectionHeaderBytes = 2 + 10 + 10;

Status CheckSectionSize(uint64_t claimed, uint64_t limit, const char* what) {
  if (claimed > limit) {
    return InvalidArgumentError(StrPrintf(
        "trace %s size %llu exceeds window size %llu", what,
        static_cast<unsigned long long>(claimed),
        static_cast<unsigned long long>(limit)));
  }
  return OkStatus();
}

}  // namespace

Result<TraceSectionPayload> ReadTraceSection(
    const RandomAccessFile& file, uint64_t base, uint64_t offset,
    uint64_t limit, TraceSection expected_kind,
    std::atomic<uint64_t>* bytes_read) {
  if (offset >= limit) {
    return InvalidArgumentError("trace section offset past end of window");
  }
  const size_t header_bytes = static_cast<size_t>(
      std::min<uint64_t>(kMaxSectionHeaderBytes, limit - offset));
  std::vector<uint8_t> header_buf;
  ASSIGN_OR_RETURN(std::span<const uint8_t> header,
                   file.Read(base + offset, header_bytes, &header_buf));
  if (bytes_read != nullptr) {
    bytes_read->fetch_add(header.size(), std::memory_order_relaxed);
  }

  Decoder decoder(header.data(), header.size());
  ASSIGN_OR_RETURN(TraceSectionHeader section, DecodeTraceSectionHeader(&decoder));
  if (section.kind != expected_kind) {
    return InvalidArgumentError("trace section kind mismatch");
  }
  RETURN_IF_ERROR(CheckSectionSize(section.stored_size, limit, "section"));
  RETURN_IF_ERROR(
      CheckSectionSize(section.uncompressed_size, /*limit=*/1u << 30, "section"));
  const uint64_t payload_offset = offset + (header.size() - decoder.remaining());
  if (payload_offset + section.stored_size + 4 > limit) {
    return InvalidArgumentError("trace section payload past end of window");
  }

  const size_t stored_size = static_cast<size_t>(section.stored_size);
  TraceSectionPayload payload;
  payload.filter = section.filter;
  ASSIGN_OR_RETURN(
      std::span<const uint8_t> stored,
      file.Read(base + payload_offset, stored_size + 4, &payload.storage));
  if (bytes_read != nullptr) {
    bytes_read->fetch_add(stored.size(), std::memory_order_relaxed);
  }

  // Trailing fixed32 CRC covers the stored payload bytes.
  Decoder crc_decoder(stored.data() + stored_size, 4);
  ASSIGN_OR_RETURN(uint32_t expected_crc, crc_decoder.GetFixed32());
  const uint32_t actual_crc = Crc32(stored.data(), stored_size);
  if (actual_crc != expected_crc) {
    return InvalidArgumentError(
        StrPrintf("trace section CRC mismatch: stored %08x, computed %08x",
                  expected_crc, actual_crc));
  }

  if (section.codec == TraceCodec::kRaw) {
    if (stored_size != section.uncompressed_size) {
      return InvalidArgumentError("raw trace section size mismatch");
    }
    // Zero-copy backends hand back the mapped bytes themselves; copying
    // backends already own them in payload.storage. Either way the
    // payload is served without another memcpy.
    payload.view = stored.first(stored_size);
    return payload;
  }
  // Decompress straight from the backend's buffer (the mapped region
  // itself under mmap) into the payload's own storage.
  ASSIGN_OR_RETURN(
      std::vector<uint8_t> decompressed,
      DecompressBlock(stored.data(), stored_size,
                      static_cast<size_t>(section.uncompressed_size)));
  payload.storage = std::move(decompressed);
  payload.view = std::span<const uint8_t>(payload.storage.data(),
                                          payload.storage.size());
  return payload;
}

}  // namespace ddr
