#include "src/trace/trace_format.h"

#include "src/trace/block_compress.h"
#include "src/util/crc32.h"

namespace ddr {

std::vector<uint8_t> TraceMetadata::Encode() const {
  Encoder encoder;
  encoder.PutString(model);
  encoder.PutString(scenario);
  encoder.PutVarint64(event_count);
  encoder.PutVarint64(events_per_chunk);
  encoder.PutVarint64(recorded_bytes);
  encoder.PutZigzag64(overhead_nanos);
  encoder.PutZigzag64(cpu_nanos);
  encoder.PutVarint64(intercepted_events);
  encoder.PutVarint64(recorded_events);
  encoder.PutDouble(original_wall_seconds);
  return encoder.TakeBuffer();
}

Result<TraceMetadata> TraceMetadata::Decode(const std::vector<uint8_t>& bytes) {
  Decoder decoder(bytes);
  TraceMetadata meta;
  ASSIGN_OR_RETURN(meta.model, decoder.GetString());
  ASSIGN_OR_RETURN(meta.scenario, decoder.GetString());
  ASSIGN_OR_RETURN(meta.event_count, decoder.GetVarint64());
  ASSIGN_OR_RETURN(meta.events_per_chunk, decoder.GetVarint64());
  ASSIGN_OR_RETURN(meta.recorded_bytes, decoder.GetVarint64());
  ASSIGN_OR_RETURN(meta.overhead_nanos, decoder.GetZigzag64());
  ASSIGN_OR_RETURN(meta.cpu_nanos, decoder.GetZigzag64());
  ASSIGN_OR_RETURN(meta.intercepted_events, decoder.GetVarint64());
  ASSIGN_OR_RETURN(meta.recorded_events, decoder.GetVarint64());
  ASSIGN_OR_RETURN(meta.original_wall_seconds, decoder.GetDouble());
  if (!decoder.Done()) {
    return InvalidArgumentError("trailing bytes after trace metadata");
  }
  return meta;
}

std::vector<uint8_t> TraceFooter::Encode() const {
  Encoder encoder;
  encoder.PutFixed64(metadata_offset);
  encoder.PutFixed64(snapshot_offset);
  encoder.PutFixed64(checkpoint_offset);
  encoder.PutVarint64(total_events);
  encoder.PutVarint64(chunks.size());
  for (const TraceChunkInfo& chunk : chunks) {
    encoder.PutVarint64(chunk.file_offset);
    encoder.PutVarint64(chunk.first_event);
    encoder.PutVarint64(chunk.event_count);
  }
  return encoder.TakeBuffer();
}

Result<TraceFooter> TraceFooter::Decode(const std::vector<uint8_t>& bytes) {
  Decoder decoder(bytes);
  TraceFooter footer;
  ASSIGN_OR_RETURN(footer.metadata_offset, decoder.GetFixed64());
  ASSIGN_OR_RETURN(footer.snapshot_offset, decoder.GetFixed64());
  ASSIGN_OR_RETURN(footer.checkpoint_offset, decoder.GetFixed64());
  ASSIGN_OR_RETURN(footer.total_events, decoder.GetVarint64());
  ASSIGN_OR_RETURN(uint64_t chunk_count, decoder.GetVarint64());
  for (uint64_t i = 0; i < chunk_count; ++i) {
    TraceChunkInfo chunk;
    ASSIGN_OR_RETURN(chunk.file_offset, decoder.GetVarint64());
    ASSIGN_OR_RETURN(chunk.first_event, decoder.GetVarint64());
    ASSIGN_OR_RETURN(chunk.event_count, decoder.GetVarint64());
    footer.chunks.push_back(chunk);
  }
  if (!decoder.Done()) {
    return InvalidArgumentError("trailing bytes after trace footer");
  }
  return footer;
}

uint64_t AppendTraceSection(std::vector<uint8_t>* out, TraceSection kind,
                            const std::vector<uint8_t>& payload,
                            bool allow_compress) {
  const uint64_t offset = out->size();
  TraceCodec codec = TraceCodec::kRaw;
  const std::vector<uint8_t>* stored = &payload;
  std::vector<uint8_t> compressed;
  if (allow_compress && !payload.empty()) {
    compressed = CompressBlock(payload);
    if (compressed.size() < payload.size()) {
      codec = TraceCodec::kDdrz;
      stored = &compressed;
    }
  }

  Encoder encoder;
  encoder.PutFixed8(static_cast<uint8_t>(kind));
  encoder.PutFixed8(static_cast<uint8_t>(codec));
  encoder.PutVarint64(payload.size());
  encoder.PutVarint64(stored->size());
  const std::vector<uint8_t>& framing = encoder.buffer();
  out->insert(out->end(), framing.begin(), framing.end());
  out->insert(out->end(), stored->begin(), stored->end());

  const uint32_t crc = Crc32(stored->data(), stored->size());
  Encoder crc_encoder;
  crc_encoder.PutFixed32(crc);
  const std::vector<uint8_t>& crc_bytes = crc_encoder.buffer();
  out->insert(out->end(), crc_bytes.begin(), crc_bytes.end());
  return offset;
}

Result<TraceSectionHeader> DecodeTraceSectionHeader(Decoder* decoder) {
  TraceSectionHeader header;
  ASSIGN_OR_RETURN(uint8_t kind, decoder->GetFixed8());
  if (kind < static_cast<uint8_t>(TraceSection::kMetadata) ||
      kind > static_cast<uint8_t>(TraceSection::kFooter)) {
    return InvalidArgumentError("unknown trace section kind");
  }
  header.kind = static_cast<TraceSection>(kind);
  ASSIGN_OR_RETURN(uint8_t codec, decoder->GetFixed8());
  if (codec > static_cast<uint8_t>(TraceCodec::kDdrz)) {
    return InvalidArgumentError("unknown trace section codec");
  }
  header.codec = static_cast<TraceCodec>(codec);
  ASSIGN_OR_RETURN(header.uncompressed_size, decoder->GetVarint64());
  ASSIGN_OR_RETURN(header.stored_size, decoder->GetVarint64());
  return header;
}

}  // namespace ddr
