// Event-chunk payload encodings.
//
// A chunk payload always starts `first_event varint | count varint`; what
// follows depends on the pre-filter recorded in the section framing:
//
//   kNone         row-oriented: each event's fields in Event::EncodeTo
//                 order, back to back (byte-identical to the original
//                 DDRT v1 chunks).
//   kVarintDelta  columnar: one array per field across the whole chunk,
//                 with monotone fields (seq, time) stored as a first
//                 absolute value followed by zigzag deltas. Consecutive
//                 events share types/fibers/regions, so the transposed
//                 arrays are run-heavy and the delta'd counters tiny —
//                 exactly the shape the ddrz LZ pass exploits (the raw
//                 row encoding only gave it ~1.1x).
//
// Both paths decode through DecodeEventChunkPayload, which validates the
// embedded (first, count) against the footer's chunk table entry.

#ifndef SRC_TRACE_CHUNK_CODEC_H_
#define SRC_TRACE_CHUNK_CODEC_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/sim/event.h"
#include "src/trace/trace_format.h"
#include "src/util/status.h"

namespace ddr {

// Encodes `count` events starting at `events` into a chunk payload whose
// index header says they cover [first_event, first_event + count).
std::vector<uint8_t> EncodeEventChunkPayload(const Event* events,
                                             uint64_t count,
                                             uint64_t first_event,
                                             TraceFilter filter);

// Which columnar decode implementation handles kVarintDelta chunks. Both
// produce bit-identical Event vectors from the same payload; kScalar is
// the original per-field reference loop, kBatched the hot path (bounds
// check hoisted to "a worst-case varint fits", single-byte fast case,
// columns written straight into the preallocated vector).
enum class ColumnarDecodePath { kBatched, kScalar };

// Process-wide default path: DDR_DECODE_PATH=scalar selects the reference
// implementation; unset or anything else selects the batched one. Read
// once on first use.
ColumnarDecodePath ActiveColumnarDecodePath();

// Decodes a chunk payload written with `filter`, checking that its header
// matches the expected (first_event, count) from the footer chunk table.
// The payload span may alias an mmap'd file region: decoding reads it in
// place, and the output vector is sized from the chunk's event count up
// front. Uses ActiveColumnarDecodePath() for kVarintDelta chunks.
Result<std::vector<Event>> DecodeEventChunkPayload(
    std::span<const uint8_t> payload, TraceFilter filter,
    uint64_t expected_first, uint64_t expected_count);

// Same, with an explicit columnar path. Tests use this to assert the
// batched and scalar decoders agree event-for-event on good payloads and
// both fail with a Status (never a crash) on corrupt ones.
Result<std::vector<Event>> DecodeEventChunkPayloadWithPath(
    std::span<const uint8_t> payload, TraceFilter filter,
    uint64_t expected_first, uint64_t expected_count,
    ColumnarDecodePath path);

}  // namespace ddr

#endif  // SRC_TRACE_CHUNK_CODEC_H_
