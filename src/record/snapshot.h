// FailureSnapshot: what a failure-deterministic recorder (ESD-style)
// captures — nothing during the run, only the final failure state: the
// observable equivalent of a bug report or core dump.

#ifndef SRC_RECORD_SNAPSHOT_H_
#define SRC_RECORD_SNAPSHOT_H_

#include <cstdint>
#include <span>
#include <string>

#include "src/sim/outcome.h"
#include "src/util/codec.h"
#include "src/util/status.h"

namespace ddr {

struct FailureSnapshot {
  bool has_failure = false;
  FailureKind kind = FailureKind::kNone;
  std::string message;
  NodeId node = 0;
  // Fingerprint of the failure identity (kind + message + node).
  uint64_t failure_fingerprint = 0;
  // Fingerprint of the outputs the failed run produced.
  uint64_t output_fingerprint = 0;
  uint64_t output_count = 0;
  SimTime virtual_duration = 0;

  static FailureSnapshot FromOutcome(const Outcome& outcome);

  // True if `other` run reached the same failure (per §3: same failure =
  // same incorrect observable behavior class).
  bool MatchesFailureOf(const Outcome& outcome) const;

  std::vector<uint8_t> Encode() const;
  static Result<FailureSnapshot> Decode(std::span<const uint8_t> bytes);
  uint64_t encoded_size_bytes() const;
};

}  // namespace ddr

#endif  // SRC_RECORD_SNAPSHOT_H_
