#include "src/record/recorder.h"

#include "src/util/logging.h"

namespace ddr {

EventClass ClassOf(EventType type) {
  switch (type) {
    case EventType::kContextSwitch:
      return EventClass::kSchedule;
    case EventType::kMutexLock:
    case EventType::kMutexUnlock:
    case EventType::kCondWait:
    case EventType::kCondSignal:
    case EventType::kCondBroadcast:
    case EventType::kSemAcquire:
    case EventType::kSemRelease:
    case EventType::kFiberBlock:
    case EventType::kFiberUnblock:
      return EventClass::kSync;
    case EventType::kSharedRead:
    case EventType::kSharedWrite:
    case EventType::kSharedRmw:
      return EventClass::kMemory;
    case EventType::kInput:
      return EventClass::kInput;
    case EventType::kOutput:
      return EventClass::kOutput;
    case EventType::kRngDraw:
      return EventClass::kRng;
    case EventType::kChannelSend:
    case EventType::kChannelRecv:
    case EventType::kNetSend:
    case EventType::kNetDeliver:
    case EventType::kNetRecv:
    case EventType::kNetDrop:
      return EventClass::kMessage;
    case EventType::kDiskWrite:
    case EventType::kDiskRead:
      return EventClass::kDisk;
    case EventType::kFiberCreate:
    case EventType::kFiberExit:
      return EventClass::kLifecycle;
    case EventType::kClockRead:
    case EventType::kSleep:
    case EventType::kRegionEnter:
    case EventType::kRegionExit:
    case EventType::kAnnotation:
    case EventType::kFailure:
    case EventType::kFaultInject:
    case EventType::kTriggerFire:
    case EventType::kNodeCrash:
      return EventClass::kMeta;
  }
  return EventClass::kMeta;
}

void Recorder::OnEvent(const Event& event) {
  if (!Intercepts(event)) {
    return;
  }
  ++intercepted_;
  SimDuration charge = costs_.interposition_cost;
  uint64_t bytes = 0;
  if (ShouldRecord(event)) {
    ++recorded_;
    const uint64_t before = log_.encoded_size_bytes();
    log_.Append(event);
    bytes = log_.encoded_size_bytes() - before + event.bytes;
    charge += costs_.log_event_cost +
              costs_.log_byte_cost * static_cast<SimDuration>(bytes);
  }
  CHECK(env_ != nullptr) << "recorder used without AttachEnvironment";
  env_->ChargeRecordingOverhead(charge, bytes);
}

}  // namespace ddr
