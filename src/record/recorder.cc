#include "src/record/recorder.h"

#include <algorithm>

#include "src/util/logging.h"

namespace ddr {

EventClass ClassOf(EventType type) {
  switch (type) {
    case EventType::kContextSwitch:
      return EventClass::kSchedule;
    case EventType::kMutexLock:
    case EventType::kMutexUnlock:
    case EventType::kCondWait:
    case EventType::kCondSignal:
    case EventType::kCondBroadcast:
    case EventType::kSemAcquire:
    case EventType::kSemRelease:
    case EventType::kFiberBlock:
    case EventType::kFiberUnblock:
      return EventClass::kSync;
    case EventType::kSharedRead:
    case EventType::kSharedWrite:
    case EventType::kSharedRmw:
      return EventClass::kMemory;
    case EventType::kInput:
      return EventClass::kInput;
    case EventType::kOutput:
      return EventClass::kOutput;
    case EventType::kRngDraw:
      return EventClass::kRng;
    case EventType::kChannelSend:
    case EventType::kChannelRecv:
    case EventType::kNetSend:
    case EventType::kNetDeliver:
    case EventType::kNetRecv:
    case EventType::kNetDrop:
      return EventClass::kMessage;
    case EventType::kDiskWrite:
    case EventType::kDiskRead:
      return EventClass::kDisk;
    case EventType::kFiberCreate:
    case EventType::kFiberExit:
      return EventClass::kLifecycle;
    case EventType::kClockRead:
    case EventType::kSleep:
    case EventType::kRegionEnter:
    case EventType::kRegionExit:
    case EventType::kAnnotation:
    case EventType::kFailure:
    case EventType::kFaultInject:
    case EventType::kTriggerFire:
    case EventType::kNodeCrash:
      return EventClass::kMeta;
  }
  return EventClass::kMeta;
}

void Recorder::SetStreamSink(EventStreamSink* sink, size_t chunk_events) {
  CHECK(recorded_ == 0) << "stream sink attached mid-recording";
  stream_ = sink;
  stream_chunk_events_ = chunk_events == 0 ? 512 : chunk_events;
  // Grow into large chunk sizes on demand rather than reserving them up
  // front: the buffer's footprint then tracks events actually recorded,
  // and an absurd chunk_events cannot force a huge allocation here.
  stream_buffer_.reserve(std::min<size_t>(stream_chunk_events_, 4096));
}

Status Recorder::FlushStream() {
  if (stream_ != nullptr && stream_status_.ok() && !stream_buffer_.empty()) {
    stream_status_ = stream_->OnRecordedEvents(stream_buffer_.data(),
                                               stream_buffer_.size());
    stream_buffer_.clear();
  }
  return stream_status_;
}

void Recorder::OnEvent(const Event& event) {
  if (!Intercepts(event)) {
    return;
  }
  ++intercepted_;
  SimDuration charge = costs_.interposition_cost;
  uint64_t bytes = 0;
  if (ShouldRecord(event)) {
    ++recorded_;
    if (stream_ != nullptr) {
      // Same byte accounting as EventLog::Append, without retaining the
      // event: encode once for its size, buffer it, and hand full chunks
      // to the sink.
      Encoder encoder;
      event.EncodeTo(&encoder);
      bytes = encoder.size() + event.bytes;
      if (stream_status_.ok()) {
        stream_buffer_.push_back(event);
        if (stream_buffer_.size() >= stream_chunk_events_) {
          stream_status_ = stream_->OnRecordedEvents(stream_buffer_.data(),
                                                     stream_buffer_.size());
          stream_buffer_.clear();
        }
      }
    } else {
      const uint64_t before = log_.encoded_size_bytes();
      log_.Append(event);
      bytes = log_.encoded_size_bytes() - before + event.bytes;
    }
    charge += costs_.log_event_cost +
              costs_.log_byte_cost * static_cast<SimDuration>(bytes);
  }
  CHECK(env_ != nullptr) << "recorder used without AttachEnvironment";
  env_->ChargeRecordingOverhead(charge, bytes);
}

}  // namespace ddr
