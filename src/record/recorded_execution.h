// RecordedExecution: everything a recorder hands to the replay/debugging
// side, plus the harness-side ground truth used only for scoring.
//
// Contract: replayers may use `log` and `snapshot` (what the production
// system shipped home) but never `original_outcome` or the production seed —
// those exist so the experiment harness can *score* fidelity afterwards.

#ifndef SRC_RECORD_RECORDED_EXECUTION_H_
#define SRC_RECORD_RECORDED_EXECUTION_H_

#include <string>

#include "src/record/event_log.h"
#include "src/record/snapshot.h"
#include "src/sim/outcome.h"

namespace ddr {

struct RecordedExecution {
  std::string model;

  // Shipped to the developer: the log + the failure snapshot (bug report).
  EventLog log;
  FailureSnapshot snapshot;

  // Recording cost accounting (from the environment's overhead ledger).
  uint64_t recorded_bytes = 0;
  SimDuration overhead_nanos = 0;
  SimDuration cpu_nanos = 0;
  uint64_t intercepted_events = 0;
  uint64_t recorded_events = 0;

  // Harness-side ground truth (never given to replayers).
  Outcome original_outcome;

  // Runtime overhead multiplier: instrumented CPU time / native CPU time.
  double OverheadMultiplier() const {
    if (cpu_nanos <= 0) {
      return 1.0;
    }
    return static_cast<double>(cpu_nanos + overhead_nanos) /
           static_cast<double>(cpu_nanos);
  }

  uint64_t TotalLogBytes() const {
    return log.encoded_size_bytes() + snapshot.encoded_size_bytes();
  }
};

}  // namespace ddr

#endif  // SRC_RECORD_RECORDED_EXECUTION_H_
