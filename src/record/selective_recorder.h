// SelectiveRecorder: the recording substrate for root-cause-driven
// selectivity (§3.1).
//
// The recorder always captures the cheap global skeleton (thread schedule,
// RNG draws, fiber lifecycle, sync order — the "thread schedule" of §4) and
// consults a selection predicate for everything else. A fidelity level can
// be dialed up (record everything) and down again; the RCSE policy engine in
// src/core drives the level from triggers. Recording state changes are
// themselves events (kTriggerFire) so they are visible in logs.

#ifndef SRC_RECORD_SELECTIVE_RECORDER_H_
#define SRC_RECORD_SELECTIVE_RECORDER_H_

#include <functional>
#include <string>

#include "src/record/recorder.h"

namespace ddr {

enum class FidelityLevel : uint8_t {
  kRelaxed = 0,  // selection predicate decides
  kFull = 1,     // record everything (dialed up)
};

class SelectiveRecorder : public Recorder {
 public:
  // Returns true if `event` must be recorded at relaxed fidelity.
  using SelectionPredicate = std::function<bool(const Event& event)>;

  SelectiveRecorder(const std::string& name, SelectionPredicate predicate)
      : Recorder(name, SelectiveCostModel()), predicate_(std::move(predicate)) {}

  bool Intercepts(const Event& event) const override {
    (void)event;
    return true;  // must observe everything to classify and trigger
  }

  bool ShouldRecord(const Event& event) override {
    if (AlwaysRecord(event)) {
      return true;
    }
    if (level_ == FidelityLevel::kFull) {
      return RecordAtFullFidelity(event);
    }
    return predicate_ != nullptr && predicate_(event);
  }

  // Dialed-up fidelity records at value-determinism granularity: sync order,
  // memory values, inputs. Message/disk payloads still re-derive from those
  // during replay, so logging them would be pure waste.
  static bool RecordAtFullFidelity(const Event& event) {
    switch (ClassOf(event.type)) {
      case EventClass::kSync:
      case EventClass::kMemory:
      case EventClass::kInput:
      case EventClass::kOutput:
        return true;
      default:
        return false;
    }
  }

  void SetLevel(FidelityLevel level) { level_ = level; }
  FidelityLevel level() const { return level_; }

  // The cheap global skeleton recorded at every fidelity level: the thread
  // schedule (which subsumes sync ordering — replay re-derives lock handoffs
  // from it), environment RNG draws, and fiber lifecycle.
  static bool AlwaysRecord(const Event& event) {
    switch (ClassOf(event.type)) {
      case EventClass::kSchedule:
      case EventClass::kRng:
      case EventClass::kLifecycle:
        return true;
      default:
        return event.type == EventType::kFailure ||
               event.type == EventType::kTriggerFire ||
               event.type == EventType::kNodeCrash ||
               event.type == EventType::kFaultInject;
    }
  }

 private:
  SelectionPredicate predicate_;
  FidelityLevel level_ = FidelityLevel::kRelaxed;
};

}  // namespace ddr

#endif  // SRC_RECORD_SELECTIVE_RECORDER_H_
