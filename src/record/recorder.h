// Recorder: base class for determinism-model recorders.
//
// A recorder is a TraceSink that (a) filters the event stream into an
// EventLog according to its determinism model and (b) charges its runtime
// cost into the environment's overhead ledger. Recording never influences
// the execution — the ledger is pure accounting.

#ifndef SRC_RECORD_RECORDER_H_
#define SRC_RECORD_RECORDER_H_

#include <string>

#include "src/record/cost_model.h"
#include "src/record/event_log.h"
#include "src/sim/environment.h"
#include "src/sim/event.h"

namespace ddr {

// Coarse event classification used by recorders' intercept/record sets.
enum class EventClass : uint8_t {
  kSchedule = 0,   // context switches
  kSync = 1,       // mutex/cond/sem operations, block/unblock
  kMemory = 2,     // instrumented shared reads/writes/rmw
  kInput = 3,
  kOutput = 4,
  kRng = 5,
  kMessage = 6,    // channel + network traffic
  kDisk = 7,
  kLifecycle = 8,  // fiber create/exit
  kMeta = 9,       // regions, annotations, failures, faults, triggers
};

EventClass ClassOf(EventType type);

class Recorder : public TraceSink {
 public:
  Recorder(std::string model_name, RecorderCostModel costs)
      : model_name_(std::move(model_name)), costs_(costs) {}

  // Must be called before the recorded run so overhead lands in the ledger.
  void AttachEnvironment(Environment* env) { env_ = env; }

  // Streams recorded events to `sink` in chunks of `chunk_events` instead
  // of accumulating them in the in-memory EventLog, bounding recorder
  // memory to one chunk. Overhead accounting is unchanged (the streamed
  // path charges exactly the bytes the log path would have), so a streamed
  // recording perturbs the ledger identically to a buffered one. Must be
  // set before the recorded run; call FlushStream() after it.
  void SetStreamSink(EventStreamSink* sink, size_t chunk_events = 512);

  // Flushes the final partial chunk and returns the first error any sink
  // call produced (sink failures must not perturb the recorded run, so
  // OnEvent latches them instead of surfacing mid-execution).
  Status FlushStream();

  void OnEvent(const Event& event) final;

  // True if this recorder's hooks fire for the event at all.
  virtual bool Intercepts(const Event& event) const = 0;
  // True if the intercepted event is written to the log. Non-const: adaptive
  // recorders (RCSE) update internal fidelity state per event.
  virtual bool ShouldRecord(const Event& event) = 0;

  const std::string& model_name() const { return model_name_; }
  // Empty while a stream sink is attached (events go to the sink instead).
  const EventLog& log() const { return log_; }
  EventLog TakeLog() { return std::move(log_); }
  const RecorderCostModel& costs() const { return costs_; }

  uint64_t intercepted_events() const { return intercepted_; }
  uint64_t recorded_events() const { return recorded_; }

 protected:
  Environment* env_ = nullptr;

 private:
  std::string model_name_;
  RecorderCostModel costs_;
  EventLog log_;
  uint64_t intercepted_ = 0;
  uint64_t recorded_ = 0;

  EventStreamSink* stream_ = nullptr;
  size_t stream_chunk_events_ = 512;
  std::vector<Event> stream_buffer_;
  Status stream_status_;  // first sink error, sticky
};

}  // namespace ddr

#endif  // SRC_RECORD_RECORDER_H_
