#include "src/record/snapshot.h"

namespace ddr {

FailureSnapshot FailureSnapshot::FromOutcome(const Outcome& outcome) {
  FailureSnapshot snapshot;
  snapshot.output_fingerprint = outcome.output_fingerprint;
  snapshot.output_count = outcome.outputs.size();
  snapshot.virtual_duration = outcome.stats.virtual_duration;
  if (const FailureInfo* failure = outcome.primary_failure(); failure != nullptr) {
    snapshot.has_failure = true;
    snapshot.kind = failure->kind;
    snapshot.message = failure->message;
    snapshot.node = failure->node;
    snapshot.failure_fingerprint = failure->Fingerprint();
  }
  return snapshot;
}

bool FailureSnapshot::MatchesFailureOf(const Outcome& outcome) const {
  if (!has_failure) {
    return !outcome.Failed();
  }
  const FailureInfo* failure = outcome.primary_failure();
  return failure != nullptr && failure->Fingerprint() == failure_fingerprint;
}

std::vector<uint8_t> FailureSnapshot::Encode() const {
  Encoder encoder;
  encoder.PutBool(has_failure);
  encoder.PutFixed8(static_cast<uint8_t>(kind));
  encoder.PutString(message);
  encoder.PutVarint64(node);
  encoder.PutFixed64(failure_fingerprint);
  encoder.PutFixed64(output_fingerprint);
  encoder.PutVarint64(output_count);
  encoder.PutVarint64(virtual_duration);
  return encoder.TakeBuffer();
}

Result<FailureSnapshot> FailureSnapshot::Decode(std::span<const uint8_t> bytes) {
  Decoder decoder(bytes.data(), bytes.size());
  FailureSnapshot snapshot;
  ASSIGN_OR_RETURN(snapshot.has_failure, decoder.GetBool());
  ASSIGN_OR_RETURN(uint8_t kind, decoder.GetFixed8());
  snapshot.kind = static_cast<FailureKind>(kind);
  ASSIGN_OR_RETURN(snapshot.message, decoder.GetString());
  ASSIGN_OR_RETURN(uint64_t node, decoder.GetVarint64());
  snapshot.node = static_cast<NodeId>(node);
  ASSIGN_OR_RETURN(snapshot.failure_fingerprint, decoder.GetFixed64());
  ASSIGN_OR_RETURN(snapshot.output_fingerprint, decoder.GetFixed64());
  ASSIGN_OR_RETURN(snapshot.output_count, decoder.GetVarint64());
  ASSIGN_OR_RETURN(uint64_t duration, decoder.GetVarint64());
  snapshot.virtual_duration = duration;
  return snapshot;
}

uint64_t FailureSnapshot::encoded_size_bytes() const { return Encode().size(); }

}  // namespace ddr
