// The determinism-model recorders of §2.
//
//   PerfectRecorder  — records every nondeterministic event (perfect
//                      determinism; SMP-ReVirt-class systems).
//   ValueRecorder    — iDNA/Friday-style value determinism: all inputs,
//                      thread interleavings, RNG draws, and the values of
//                      every instrumented memory access.
//   OutputRecorder   — ODR-style output determinism. kOutputsOnly logs just
//                      outputs; kOdrHeavy additionally logs inputs and sync
//                      operations but — like ODR — not the causal order of
//                      racing memory accesses (no context switches, no
//                      memory values).
//   FailureRecorder  — ESD-style failure determinism: records nothing; the
//                      failure snapshot is taken from the outcome after the
//                      run (the "bug report / core dump").

#ifndef SRC_RECORD_MODEL_RECORDERS_H_
#define SRC_RECORD_MODEL_RECORDERS_H_

#include "src/record/recorder.h"

namespace ddr {

class PerfectRecorder : public Recorder {
 public:
  PerfectRecorder() : Recorder("perfect", PerfectCostModel()) {}

  bool Intercepts(const Event& event) const override {
    (void)event;
    return true;
  }
  bool ShouldRecord(const Event& event) override {
    (void)event;
    return true;
  }
};

class ValueRecorder : public Recorder {
 public:
  ValueRecorder() : Recorder("value", ValueCostModel()) {}

  bool Intercepts(const Event& event) const override {
    (void)event;
    return true;  // value determinism interposes on every access
  }

  bool ShouldRecord(const Event& event) override {
    switch (ClassOf(event.type)) {
      case EventClass::kSchedule:
      case EventClass::kSync:
      case EventClass::kMemory:
      case EventClass::kInput:
      case EventClass::kRng:
      case EventClass::kLifecycle:
        return true;
      default:
        return false;
    }
  }
};

class OutputRecorder : public Recorder {
 public:
  enum class Mode {
    kOutputsOnly,  // ODR's most lightweight scheme
    kOdrHeavy,     // outputs + inputs + sync order (no race causal order)
  };

  explicit OutputRecorder(Mode mode)
      : Recorder(mode == Mode::kOutputsOnly ? "output" : "output-heavy",
                 OutputCostModel()),
        mode_(mode) {}

  bool Intercepts(const Event& event) const override {
    const EventClass cls = ClassOf(event.type);
    if (mode_ == Mode::kOutputsOnly) {
      return cls == EventClass::kOutput;
    }
    return cls == EventClass::kOutput || cls == EventClass::kInput ||
           cls == EventClass::kSync || cls == EventClass::kLifecycle;
  }

  bool ShouldRecord(const Event& event) override { return Intercepts(event); }

  Mode mode() const { return mode_; }

 private:
  Mode mode_;
};

class FailureRecorder : public Recorder {
 public:
  FailureRecorder() : Recorder("failure", FailureCostModel()) {}

  bool Intercepts(const Event& event) const override {
    (void)event;
    return false;  // no runtime hooks at all
  }
  bool ShouldRecord(const Event& event) override {
    (void)event;
    return false;
  }
};

}  // namespace ddr

#endif  // SRC_RECORD_MODEL_RECORDERS_H_
