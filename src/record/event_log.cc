#include "src/record/event_log.h"

#include <algorithm>

namespace ddr {

namespace {
constexpr uint32_t kLogMagic = 0x6464524cu;  // "ddRL"
}  // namespace

void EventLog::Append(const Event& event) {
  events_.push_back(event);
  counts_[static_cast<size_t>(event.type)]++;
  encoded_size_bytes_ += event.EncodedSizeBytes();
}

void EventLog::AppendAll(const Event* events, size_t count) {
  if (events_.size() + count > events_.capacity()) {
    // Geometric growth, not an exact fit: chunk-at-a-time callers without
    // an up-front Reserve must not reallocate on every chunk.
    events_.reserve(std::max(events_.size() + count, events_.capacity() * 2));
  }
  for (size_t i = 0; i < count; ++i) {
    events_.push_back(events[i]);
    counts_[static_cast<size_t>(events[i].type)]++;
    encoded_size_bytes_ += events[i].EncodedSizeBytes();
  }
}

std::vector<Event> EventLog::EventsOfType(EventType type) const {
  std::vector<Event> out;
  for (const Event& event : events_) {
    if (event.type == type) {
      out.push_back(event);
    }
  }
  return out;
}

std::vector<uint8_t> EventLog::Encode() const {
  Encoder encoder;
  encoder.PutFixed32(kLogMagic);
  encoder.PutVarint64(events_.size());
  for (const Event& event : events_) {
    event.EncodeTo(&encoder);
  }
  return encoder.TakeBuffer();
}

Result<EventLog> EventLog::Decode(const std::vector<uint8_t>& bytes) {
  Decoder decoder(bytes);
  ASSIGN_OR_RETURN(uint32_t magic, decoder.GetFixed32());
  if (magic != kLogMagic) {
    return InvalidArgumentError("bad event log magic");
  }
  ASSIGN_OR_RETURN(uint64_t count, decoder.GetVarint64());
  EventLog log;
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(Event event, Event::DecodeFrom(&decoder));
    log.Append(event);
  }
  if (!decoder.Done()) {
    return InvalidArgumentError("trailing bytes after event log");
  }
  return log;
}

}  // namespace ddr
