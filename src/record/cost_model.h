// Recording cost model.
//
// Substitution note (see DESIGN.md): the paper measures wall-clock recording
// overhead on real hardware; we charge each recorder action a calibrated
// virtual-time cost into the environment's overhead ledger and report
// overhead = (cpu + ledger) / cpu. The constants below were calibrated so
// that the *relative* costs match the published systems' character:
// value determinism (iDNA/Friday: every memory access logged) is the most
// expensive, failure determinism (ESD: nothing recorded) is free, and
// selective recording sits slightly above the ultra-relaxed models.
// Microbenchmarks (bench/micro_recording) additionally measure the real
// nanoseconds of the recorder hot paths.

#ifndef SRC_RECORD_COST_MODEL_H_
#define SRC_RECORD_COST_MODEL_H_

#include <cstdint>

#include "src/sim/types.h"

namespace ddr {

struct RecorderCostModel {
  // Charged for every event the recorder must interpose on, recorded or not
  // (the cost of the hook itself: a filter check, a branch).
  SimDuration interposition_cost = 15 * kNanosecond;
  // Charged per event actually written to the log.
  SimDuration log_event_cost = 45 * kNanosecond;
  // Charged per payload byte written to the log.
  SimDuration log_byte_cost = 2 * kNanosecond;
};

// Presets per determinism model. Perfect determinism pays extra for
// cross-CPU causality tracking (SMP-ReVirt-style CREW page protections in
// real systems); relaxed models use the default hook costs.
inline RecorderCostModel PerfectCostModel() {
  RecorderCostModel costs;
  costs.interposition_cost = 40 * kNanosecond;
  costs.log_event_cost = 80 * kNanosecond;
  costs.log_byte_cost = 3 * kNanosecond;
  return costs;
}

inline RecorderCostModel ValueCostModel() {
  RecorderCostModel costs;
  costs.interposition_cost = 30 * kNanosecond;
  costs.log_event_cost = 85 * kNanosecond;
  costs.log_byte_cost = 2 * kNanosecond;
  return costs;
}

inline RecorderCostModel OutputCostModel() {
  RecorderCostModel costs;  // defaults
  return costs;
}

inline RecorderCostModel FailureCostModel() {
  RecorderCostModel costs;
  costs.interposition_cost = 0;
  costs.log_event_cost = 0;
  costs.log_byte_cost = 0;
  return costs;
}

inline RecorderCostModel SelectiveCostModel() {
  RecorderCostModel costs;
  // Selective hooks are a single region/level check; log writes are the
  // same append path as the output recorder's.
  costs.interposition_cost = 10 * kNanosecond;
  costs.log_event_cost = 35 * kNanosecond;
  costs.log_byte_cost = 2 * kNanosecond;
  return costs;
}

}  // namespace ddr

#endif  // SRC_RECORD_COST_MODEL_H_
