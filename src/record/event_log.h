// EventLog: the serialized product of recording.
//
// A log is an ordered subset of an execution's events. Its encoded size is
// the "bytes logged" metric; replay directors build playback indices
// (schedules, value FIFOs) from it.

#ifndef SRC_RECORD_EVENT_LOG_H_
#define SRC_RECORD_EVENT_LOG_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/sim/event.h"
#include "src/util/codec.h"
#include "src/util/status.h"

namespace ddr {

// Receives recorded events in chunks, in log order. Implemented by the
// streaming trace writer so a recorder can spill its log to disk as it
// observes instead of accumulating the whole EventLog in memory.
class EventStreamSink {
 public:
  virtual ~EventStreamSink() = default;
  virtual Status OnRecordedEvents(const Event* events, size_t count) = 0;
};

class EventLog {
 public:
  EventLog() = default;

  void Append(const Event& event);

  // Bulk append, no per-event temporaries. The trace/corpus readers
  // rebuild logs chunk-at-a-time through this; callers that know the
  // final size Reserve() it up front so chunk appends never reallocate.
  void AppendAll(const Event* events, size_t count);
  void Reserve(size_t capacity) { events_.reserve(capacity); }

  const std::vector<Event>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  // Total size of the varint-encoded log, maintained incrementally.
  uint64_t encoded_size_bytes() const { return encoded_size_bytes_; }

  uint64_t CountOfType(EventType type) const {
    return counts_[static_cast<size_t>(type)];
  }

  std::vector<Event> EventsOfType(EventType type) const;

  // Full serialization (header + events).
  std::vector<uint8_t> Encode() const;
  static Result<EventLog> Decode(const std::vector<uint8_t>& bytes);

 private:
  std::vector<Event> events_;
  uint64_t encoded_size_bytes_ = 0;
  std::array<uint64_t, 64> counts_{};
};

}  // namespace ddr

#endif  // SRC_RECORD_EVENT_LOG_H_
