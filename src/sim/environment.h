// Environment: the deterministic execution substrate.
//
// An Environment runs one simulated multi-fiber, multi-node program to
// completion. Every source of nondeterminism — scheduling, inputs,
// environment RNG draws (network latency, drops), shared-memory access
// interleavings, faults — flows through explicit decision points that an
// ExecutionDirector can observe and override, and every decision is
// materialized as an Event fanned out to TraceSinks.
//
// Concurrency model: fibers are OS threads scheduled strictly one-at-a-time
// via baton handoff (see fiber.h), so all Environment state is accessed with
// mutual exclusion by construction and executions are a pure function of
// (program, seed, director).
//
// Lifecycle: construct -> configure (sinks, director, fault plan, spec) ->
// Run(program) exactly once -> inspect Outcome.

#ifndef SRC_SIM_ENVIRONMENT_H_
#define SRC_SIM_ENVIRONMENT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/director.h"
#include "src/sim/event.h"
#include "src/sim/fault.h"
#include "src/sim/fiber.h"
#include "src/sim/outcome.h"
#include "src/sim/types.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace ddr {

class SimProgram;

// Kind tag for every object registered in an environment.
enum class ObjectKind : uint8_t {
  kFiber = 0,
  kMutex = 1,
  kCondVar = 2,
  kSemaphore = 3,
  kWaitQueue = 4,
  kCell = 5,
  kChannel = 6,
  kEndpoint = 7,
  kInputSource = 8,
  kDisk = 9,
  kOutputSink = 10,
};

struct ObjectInfo {
  ObjectId id = kInvalidObject;
  ObjectKind kind = ObjectKind::kWaitQueue;
  std::string name;
  NodeId node = 0;
};

class Environment {
 public:
  struct Options {
    // Seed for all environment-level randomness (scheduling, latencies).
    uint64_t seed = 1;
    SchedulingOptions scheduling;
    // Run bounds; 0 means unlimited. Exceeding a bound stops the run and
    // marks the corresponding RunStats flag.
    uint64_t max_events = 20'000'000;
    SimTime max_virtual_time = 0;
    // Stop scheduling as soon as the first failure is recorded.
    bool stop_on_first_failure = true;
    // Virtual CPU cost charged per simulated operation.
    SimDuration base_op_cost = 50 * kNanosecond;
  };

  explicit Environment(Options options);
  ~Environment();

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  // ---------------------------------------------------------------- setup
  void AddTraceSink(TraceSink* sink);  // non-owning; must outlive Run()
  void SetDirector(ExecutionDirector* director);  // non-owning
  void SetFaultPlan(FaultPlan plan);
  void SetIoSpec(IoSpec spec);

  // Runs the program to completion. Must be called exactly once.
  Outcome Run(SimProgram& program);
  // Convenience: runs a bare function as the program's Main.
  Outcome Run(const std::string& name, std::function<void(Environment&)> main_fn);

  // ---------------------------------------------------------- introspection
  const Options& options() const { return options_; }
  Rng& scheduler_rng() { return scheduler_rng_; }
  SimTime Now() const { return now_; }
  uint64_t next_event_seq() const { return next_event_seq_; }
  uint64_t decision_seq() const { return decision_seq_; }
  const FaultPlan& fault_plan() const { return fault_plan_; }
  bool NodeAlive(NodeId node) const;
  bool shutting_down() const { return shutting_down_; }
  // Id of the currently executing fiber, or kInvalidFiber from scheduler
  // context (callbacks, pre-run).
  FiberId CurrentFiberId() const;
  NodeId CurrentNode() const;
  const std::string& FiberName(FiberId fiber) const;
  size_t NumFibers() const { return fibers_.size(); }

  const ObjectInfo& object_info(ObjectId id) const;
  size_t num_objects() const { return objects_.size(); }

  // ------------------------------------------------------------- topology
  // Adds a node and returns its id (node 0 exists implicitly).
  NodeId AddNode(const std::string& name);
  size_t num_nodes() const { return node_names_.size(); }
  const std::string& node_name(NodeId node) const;

  // --------------------------------------------------------------- fibers
  // Spawns a fiber on the current node (or node 0 from scheduler context).
  FiberId Spawn(const std::string& name, std::function<void()> body);
  FiberId SpawnOnNode(NodeId node, const std::string& name, std::function<void()> body);
  // Blocks until `fiber` finishes.
  void Join(FiberId fiber);
  // Voluntary scheduling point: always routes through the scheduler.
  void Yield();
  void SleepFor(SimDuration duration);
  // Reads the virtual clock (instrumented: emits kClockRead).
  SimTime ReadClock();

  // ------------------------------------------------------------------ I/O
  // Registers a source of external input values (the "outside world").
  ObjectId RegisterInputSource(const std::string& name, std::function<uint64_t()> generator);
  // Reads the next value from a source. Replay directors may override.
  uint64_t ReadInput(ObjectId source, uint32_t bytes = 8);
  // Emits an observable output value on the current node.
  void EmitOutput(uint64_t value, uint32_t bytes = 8);
  // Environment-level random draw (bound 0 means full 64-bit range).
  uint64_t RngDraw(RngPurpose purpose, uint64_t bound = 0);
  // Free-form annotation event (visible to analyses).
  void Annotate(uint64_t tag, uint64_t value);
  // Simulated allocation site; fails if an OOM fault is armed for this node.
  void CheckAlloc(uint32_t bytes);
  // Like CheckAlloc, but returns false instead of aborting (for code that
  // swallows allocation errors — a §3.1.3 "deviant behavior" source).
  bool TryAlloc(uint32_t bytes);
  // Records a failure and kills the calling fiber (process abort analog).
  [[noreturn]] void Abort(FailureKind kind, const std::string& message);

  // -------------------------------------------------------------- regions
  // Registers a code region (ids are dense and deterministic in call order).
  RegionId RegisterRegion(const std::string& name);
  void EnterRegion(RegionId region);
  void ExitRegion(RegionId region);
  const std::string& region_name(RegionId region) const;
  size_t num_regions() const { return region_names_.size(); }
  RegionId CurrentRegion() const;

  // ------------------------------------------------------ synchronization
  ObjectId CreateMutex(const std::string& name);
  void MutexLock(ObjectId mutex);
  void MutexUnlock(ObjectId mutex);
  bool MutexHeldByCurrent(ObjectId mutex) const;

  ObjectId CreateCondVar(const std::string& name);
  // Atomically releases `mutex`, waits for a signal, reacquires `mutex`.
  void CondWait(ObjectId cond, ObjectId mutex);
  void CondSignal(ObjectId cond);
  void CondBroadcast(ObjectId cond);

  ObjectId CreateSemaphore(const std::string& name, uint64_t initial);
  void SemAcquire(ObjectId sem);
  void SemRelease(ObjectId sem);

  // Raw FIFO wait queues: the building block for channels and endpoints.
  // timeout < 0 waits forever.
  ObjectId CreateWaitQueue(const std::string& name);
  WakeReason WaitOn(ObjectId queue, SimDuration timeout = -1);
  void NotifyOne(ObjectId queue);
  void NotifyAll(ObjectId queue);

  // ------------------------------------------------- instrumented memory
  // Cells are the unit of shared-memory instrumentation: every access is an
  // event, a scheduling point, and a race-detection observation.
  ObjectId CreateCell(const std::string& name, uint64_t initial);
  uint64_t CellRead(ObjectId cell);
  void CellWrite(ObjectId cell, uint64_t value);
  // Atomic read-modify-write (single event, no preemption inside).
  uint64_t CellRmw(ObjectId cell, const std::function<uint64_t(uint64_t)>& fn);
  // Uninstrumented peek (no event, no scheduling point); for snapshots.
  uint64_t CellPeek(ObjectId cell) const;

  // ------------------------------------------- library extension points
  // Registers an object id for a library component (channel, endpoint...).
  ObjectId RegisterObject(ObjectKind kind, const std::string& name, NodeId node);
  // Emits an event on behalf of a library component; charges op cost and
  // runs a preemption point first if `preempt` is true.
  void EmitLibraryEvent(EventType type, ObjectId obj, uint64_t value, uint64_t aux,
                        uint32_t bytes, bool preempt = true);
  // Schedules a callback on the scheduler thread at virtual time `when`
  // (>= now). Callbacks must not block.
  void ScheduleCallbackAt(SimTime when, std::function<void()> callback);
  // Crashes a node: kills its fibers, marks it dead, notifies listeners.
  void CrashNode(NodeId node);
  void AddNodeCrashListener(std::function<void(NodeId)> listener);

  // ------------------------------------------------------ overhead ledger
  // Recorders charge their runtime cost here. The ledger never perturbs the
  // execution; it is pure accounting read by the overhead model.
  void ChargeRecordingOverhead(SimDuration nanos, uint64_t bytes);
  SimDuration recording_overhead_nanos() const { return overhead_nanos_; }
  uint64_t recorded_bytes() const { return recorded_bytes_; }
  // Accumulated virtual CPU cost of the run (excludes sleeps/latency waits).
  SimDuration cpu_nanos() const { return cpu_nanos_; }

 private:
  struct MutexState {
    bool locked = false;
    FiberId owner = kInvalidFiber;
    uint64_t lock_count = 0;  // total acquisitions, for diagnostics
  };
  struct SemState {
    uint64_t count = 0;
  };
  struct CellState {
    uint64_t value = 0;
  };
  struct CondState {};
  struct InputState {
    std::function<uint64_t()> generator;
  };
  struct Timer {
    SimTime when = 0;
    uint64_t seq = 0;  // insertion order tie-break
    // kWake timers wake `fiber` if its block generation still matches.
    bool is_callback = false;
    FiberId fiber = kInvalidFiber;
    uint64_t generation = 0;
    std::function<void()> callback;
  };

  // --- fiber machinery
  Fiber* current() const { return current_; }
  Fiber* fiber(FiberId id) const;
  void FiberTrampoline(Fiber* f, const std::function<void()>& body);
  // Transfers control fiber -> scheduler. Throws FiberKilled on kill.
  void SwitchOut(Fiber::State new_state);
  // Marks the current fiber blocked on `obj` and yields. Returns wake cause.
  WakeReason BlockCurrent(ObjectId obj, SimDuration timeout);
  void WakeFiber(FiberId id, WakeReason reason);
  void RemoveFromWaitList(ObjectId obj, FiberId id);
  void KillFiber(FiberId id);
  void MakeRunnable(FiberId id);

  // --- scheduler
  void SchedulerLoop();
  void FireDueTimers();
  bool AdvanceToNextTimer();
  void PushTimer(Timer timer);
  Timer PopTimer();
  void ShutdownAllFibers();
  void ReportDeadlock();

  // --- decision points
  void MaybePreempt();
  void AdvanceClock(SimDuration cost);

  // --- events
  void Emit(EventType type, ObjectId obj, uint64_t value, uint64_t aux, uint32_t bytes);
  void EmitSwitch(FiberId prev, FiberId next);
  SwitchCause last_switch_cause_ = SwitchCause::kNone;

  // --- faults
  void ArmFaultPlan();

  Options options_;
  Rng scheduler_rng_;
  ExecutionDirector* director_ = nullptr;
  std::unique_ptr<DefaultDirector> default_director_;
  std::vector<TraceSink*> sinks_;
  FingerprintSink fingerprint_sink_;
  Fingerprint output_fingerprint_;
  FaultPlan fault_plan_;
  IoSpec io_spec_;

  // Object registry.
  std::vector<ObjectInfo> objects_;
  std::map<ObjectId, MutexState> mutexes_;
  std::map<ObjectId, SemState> semaphores_;
  std::map<ObjectId, CellState> cells_;
  std::map<ObjectId, InputState> inputs_;
  std::map<ObjectId, std::deque<FiberId>> wait_lists_;

  // Topology.
  std::vector<std::string> node_names_;
  std::vector<bool> node_alive_;
  std::vector<std::function<void(NodeId)>> crash_listeners_;
  std::vector<std::string> region_names_;

  // Fibers and scheduling.
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::vector<ObjectId> fiber_object_ids_;
  std::vector<FiberId> runnable_;
  Fiber* current_ = nullptr;
  FiberId last_running_ = kInvalidFiber;
  Baton sched_baton_;
  size_t live_fibers_ = 0;

  // Armed OOM faults: (node, earliest time).
  std::vector<std::pair<NodeId, SimTime>> armed_oom_;

  // Timers.
  std::vector<Timer> timer_heap_;
  uint64_t next_timer_seq_ = 0;

  // Clock / counters.
  SimTime now_ = 0;
  SimDuration cpu_nanos_ = 0;
  uint64_t next_event_seq_ = 0;
  uint64_t decision_seq_ = 0;
  uint64_t context_switches_ = 0;

  // Run state.
  bool started_ = false;
  bool shutting_down_ = false;
  bool stop_requested_ = false;
  bool in_scheduler_context_ = true;
  Outcome outcome_;

  // Overhead ledger.
  SimDuration overhead_nanos_ = 0;
  uint64_t recorded_bytes_ = 0;
};

// RAII code-region scope.
class RegionScope {
 public:
  RegionScope(Environment& env, RegionId region) : env_(env), region_(region) {
    env_.EnterRegion(region_);
  }
  ~RegionScope() { env_.ExitRegion(region_); }

  RegionScope(const RegionScope&) = delete;
  RegionScope& operator=(const RegionScope&) = delete;

 private:
  Environment& env_;
  RegionId region_;
};

}  // namespace ddr

#endif  // SRC_SIM_ENVIRONMENT_H_
