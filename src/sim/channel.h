// Channel<T>: FIFO message queue between fibers (same node or cross-node
// in-process messaging; for cross-node traffic with latency/loss semantics
// use src/sim/network.h).
//
// Sends/receives are events carrying payload sizes so that the plane
// classifier can attribute data rates to code regions.

#ifndef SRC_SIM_CHANNEL_H_
#define SRC_SIM_CHANNEL_H_

#include <deque>
#include <optional>
#include <string>
#include <utility>

#include "src/sim/environment.h"
#include "src/util/hash.h"

namespace ddr {

template <typename T>
class Channel {
 public:
  // `capacity` 0 means unbounded; otherwise Send blocks while full.
  Channel(Environment& env, const std::string& name, size_t capacity = 0)
      : env_(env),
        capacity_(capacity),
        id_(env.RegisterObject(ObjectKind::kChannel, name, env.CurrentNode())),
        recv_queue_(env.CreateWaitQueue(name + ".recv")),
        send_queue_(env.CreateWaitQueue(name + ".send")) {}

  // `bytes` is the simulated wire size of the payload (for rate accounting).
  void Send(T item, uint32_t bytes = sizeof(T)) {
    while (capacity_ != 0 && items_.size() >= capacity_) {
      env_.WaitOn(send_queue_);
    }
    items_.push_back(std::move(item));
    env_.EmitLibraryEvent(EventType::kChannelSend, id_, items_.size(), 0, bytes);
    env_.NotifyOne(recv_queue_);
  }

  T Recv(uint32_t bytes = sizeof(T)) {
    while (items_.empty()) {
      env_.WaitOn(recv_queue_);
    }
    T item = std::move(items_.front());
    items_.pop_front();
    env_.EmitLibraryEvent(EventType::kChannelRecv, id_, items_.size(), 0, bytes);
    env_.NotifyOne(send_queue_);
    return item;
  }

  // Non-blocking receive.
  std::optional<T> TryRecv(uint32_t bytes = sizeof(T)) {
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    env_.EmitLibraryEvent(EventType::kChannelRecv, id_, items_.size(), 0, bytes);
    env_.NotifyOne(send_queue_);
    return item;
  }

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  ObjectId id() const { return id_; }

 private:
  Environment& env_;
  size_t capacity_;
  ObjectId id_;
  ObjectId recv_queue_;
  ObjectId send_queue_;
  std::deque<T> items_;
};

}  // namespace ddr

#endif  // SRC_SIM_CHANNEL_H_
