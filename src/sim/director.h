// ExecutionDirector: the interposition interface for every nondeterministic
// decision in a simulated execution.
//
// The default director makes decisions from the environment's seeded
// scheduler RNG (this is the "production run"). Replay directors (see
// src/replay) override decisions from a recorded log or from an inference
// search. Recording never changes decisions; it only observes events.

#ifndef SRC_SIM_DIRECTOR_H_
#define SRC_SIM_DIRECTOR_H_

#include <cstdint>
#include <vector>

#include "src/sim/event.h"
#include "src/sim/types.h"

namespace ddr {

class Environment;

// Purpose tags for environment-level RNG draws, so logs identify what a
// recorded draw was for.
enum class RngPurpose : uint64_t {
  kGeneric = 0,
  kNetLatency = 1,
  kNetDrop = 2,
  kAppChoice = 3,
};

class ExecutionDirector {
 public:
  virtual ~ExecutionDirector() = default;

  // Consulted at every preemption point. `decision_seq` is the index of this
  // decision point (dense, deterministic). Returning true forces a context
  // switch decision at this point.
  virtual bool ShouldPreempt(Environment& env, FiberId current, uint64_t decision_seq);

  // Picks the next fiber among `runnable` (sorted ascending, non-empty).
  // `switch_seq` is the index of this switch decision.
  virtual FiberId PickNextFiber(Environment& env, const std::vector<FiberId>& runnable,
                                uint64_t switch_seq);

  // Decision overrides. Returning true means *value was supplied by the
  // director (replay); false means the environment generates it.
  virtual bool OverrideRngDraw(Environment& env, RngPurpose purpose, uint64_t* value);
  virtual bool OverrideInput(Environment& env, ObjectId source, uint64_t* value);
  virtual bool OverrideSharedRead(Environment& env, ObjectId cell, uint64_t* value);

  // Observes every event (after emission). Replay directors use this to
  // track their position in the log; RCSE uses it to run triggers.
  virtual void OnEvent(Environment& env, const Event& event);
};

// Scheduling behavior of the default director.
struct SchedulingOptions {
  enum class Policy : uint8_t {
    kRandom = 0,      // uniform choice among runnable fibers
    kRoundRobin = 1,  // cycle through runnable fibers
  };

  Policy policy = Policy::kRandom;
  // Probability of forcing a context-switch decision at each preemption
  // point. Higher values explore more interleavings per run.
  double preempt_probability = 0.1;
};

// Default director: seeded-random (or round-robin) scheduling, no overrides.
class DefaultDirector : public ExecutionDirector {
 public:
  DefaultDirector() = default;
  explicit DefaultDirector(SchedulingOptions options) : options_(options) {}

  bool ShouldPreempt(Environment& env, FiberId current, uint64_t decision_seq) override;
  FiberId PickNextFiber(Environment& env, const std::vector<FiberId>& runnable,
                        uint64_t switch_seq) override;

  const SchedulingOptions& options() const { return options_; }

 private:
  SchedulingOptions options_;
  size_t rr_cursor_ = 0;
};

}  // namespace ddr

#endif  // SRC_SIM_DIRECTOR_H_
