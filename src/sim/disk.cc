#include "src/sim/disk.h"

#include <utility>

#include "src/util/logging.h"

namespace ddr {

SimDisk::SimDisk(Environment& env, const std::string& name, DiskOptions options)
    : env_(env),
      id_(env.RegisterObject(ObjectKind::kDisk, name, env.CurrentNode())),
      options_(options) {}

size_t SimDisk::Append(std::string record) {
  const uint32_t bytes = static_cast<uint32_t>(record.size());
  const SimDuration latency =
      options_.seek_latency + options_.per_byte * static_cast<SimDuration>(bytes);
  env_.EmitLibraryEvent(EventType::kDiskWrite, id_, records_.size(), 0, bytes);
  env_.SleepFor(latency);
  bytes_written_ += bytes;
  records_.push_back(std::move(record));
  return records_.size() - 1;
}

std::string SimDisk::Read(size_t index) {
  CHECK_LT(index, records_.size());
  const uint32_t bytes = static_cast<uint32_t>(records_[index].size());
  const SimDuration latency =
      options_.seek_latency + options_.per_byte * static_cast<SimDuration>(bytes);
  env_.EmitLibraryEvent(EventType::kDiskRead, id_, index, 0, bytes);
  env_.SleepFor(latency);
  return records_[index];
}

}  // namespace ddr
