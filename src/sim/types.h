// Fundamental identifier and time types for the deterministic substrate.
//
// All nondeterminism in a ddr execution flows through objects addressed by
// these ids, so that recorders and replayers can name every decision point.

#ifndef SRC_SIM_TYPES_H_
#define SRC_SIM_TYPES_H_

#include <cstdint>
#include <limits>

namespace ddr {

// Virtual time in nanoseconds since the start of the execution.
using SimTime = uint64_t;
// Signed virtual duration in nanoseconds.
using SimDuration = int64_t;

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;

using FiberId = uint32_t;
using NodeId = uint32_t;
// Identifies a sim object (mutex, condvar, cell, channel, endpoint, input
// source, ...). Object id spaces are shared: every object created in an
// environment gets a unique ObjectId regardless of kind.
using ObjectId = uint64_t;
using RegionId = uint32_t;

constexpr FiberId kInvalidFiber = std::numeric_limits<FiberId>::max();
constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
constexpr ObjectId kInvalidObject = std::numeric_limits<ObjectId>::max();
// Region 0 is the implicit "unclassified" region every fiber starts in.
constexpr RegionId kDefaultRegion = 0;

}  // namespace ddr

#endif  // SRC_SIM_TYPES_H_
