// The universal event model.
//
// Every nondeterministic (or analysis-relevant) action in a simulated
// execution is materialized as an Event and fanned out to TraceSinks:
// recorders, race detectors, plane profilers, invariant monitors, metrics.
// The design mirrors what binary instrumentation gives real replay systems:
// an interposition point on every source of nondeterminism.

#ifndef SRC_SIM_EVENT_H_
#define SRC_SIM_EVENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/types.h"
#include "src/util/codec.h"
#include "src/util/hash.h"

namespace ddr {

enum class EventType : uint8_t {
  // Fiber lifecycle and scheduling.
  kFiberCreate = 0,
  kFiberExit = 1,
  kContextSwitch = 2,   // obj = previous fiber, value = next fiber
  kFiberBlock = 3,      // obj = object blocked on
  kFiberUnblock = 4,    // obj = object that unblocked the fiber

  // Synchronization.
  kMutexLock = 5,
  kMutexUnlock = 6,
  kCondWait = 7,
  kCondSignal = 8,
  kCondBroadcast = 9,
  kSemAcquire = 10,
  kSemRelease = 11,

  // Instrumented shared memory. value = value read/written.
  kSharedRead = 12,
  kSharedWrite = 13,
  kSharedRmw = 14,  // value = new value, aux = old value

  // External nondeterminism.
  kInput = 15,     // obj = input source, value = value read, bytes = size
  kOutput = 16,    // obj = output sink, value = value, bytes = size
  kRngDraw = 17,   // value = drawn value, obj = purpose tag

  // Messaging.
  kChannelSend = 18,   // obj = channel, bytes = payload size, value = msg hash
  kChannelRecv = 19,
  kNetSend = 20,       // obj = endpoint, value = message id
  kNetDeliver = 21,    // obj = endpoint, value = message id
  kNetRecv = 22,       // obj = endpoint, value = message id
  kNetDrop = 23,       // obj = endpoint, value = message id, aux = reason

  // Time.
  kClockRead = 24,  // value = virtual now
  kSleep = 25,      // value = duration

  // Disk.
  kDiskWrite = 26,  // obj = disk, bytes = size
  kDiskRead = 27,

  // Structure and diagnostics.
  kRegionEnter = 28,  // obj = region id
  kRegionExit = 29,
  kAnnotation = 30,  // obj = annotation tag, value = payload
  kFailure = 31,     // obj = failure kind, value = detail hash
  kFaultInject = 32,  // obj = fault kind, value = target
  kTriggerFire = 33,  // obj = trigger id (emitted by RCSE machinery)
  kNodeCrash = 34,    // obj = node id
};

std::string_view EventTypeName(EventType type);

// Kinds of failures a simulated execution can end with. The values are part
// of failure snapshots, so they are stable.
enum class FailureKind : uint8_t {
  kNone = 0,
  kCrash = 1,          // explicit SimAbort / assertion failure
  kSpecViolation = 2,  // I/O specification violated (wrong output)
  kPerformance = 3,    // performance characteristics out of spec
  kDeadlock = 4,       // no runnable fiber, no pending timer
  kOom = 5,            // simulated out-of-memory
};

std::string_view FailureKindName(FailureKind kind);

// Why the previously running fiber relinquished control at a context switch.
// Encoded in the low bits of kContextSwitch's aux field; replay directors use
// it to re-force preemptions at exactly the recorded decision points.
enum class SwitchCause : uint8_t {
  kNone = 0,     // first switch of the run
  kPreempt = 1,  // involuntary preemption at a decision point
  kYield = 2,    // voluntary Yield()
  kBlocked = 3,  // previous fiber blocked
  kExit = 4,     // previous fiber finished
};

// kContextSwitch aux packing: (decision_seq << 3) | cause.
constexpr uint64_t PackSwitchAux(uint64_t decision_seq, SwitchCause cause) {
  return (decision_seq << 3) | static_cast<uint64_t>(cause);
}
constexpr uint64_t SwitchAuxDecision(uint64_t aux) { return aux >> 3; }
constexpr SwitchCause SwitchAuxCause(uint64_t aux) {
  return static_cast<SwitchCause>(aux & 0x7);
}

struct Event {
  uint64_t seq = 0;       // global sequence number, dense from 0
  SimTime time = 0;       // virtual time of the event
  FiberId fiber = kInvalidFiber;
  NodeId node = 0;
  EventType type = EventType::kAnnotation;
  ObjectId obj = kInvalidObject;
  uint64_t value = 0;
  uint64_t aux = 0;
  RegionId region = kDefaultRegion;
  uint32_t bytes = 0;  // data volume attributed to this event

  // Stable fingerprint of the event's semantic content (excludes seq/time so
  // that overhead accounting does not perturb fingerprints).
  uint64_t SemanticHash() const {
    uint64_t h = kFnvOffsetBasis;
    h = HashCombine(h, static_cast<uint64_t>(type));
    h = HashCombine(h, fiber);
    h = HashCombine(h, node);
    h = HashCombine(h, obj);
    h = HashCombine(h, value);
    h = HashCombine(h, aux);
    h = HashCombine(h, bytes);
    return h;
  }

  void EncodeTo(Encoder* encoder) const;
  static Result<Event> DecodeFrom(Decoder* decoder);

  // Exact size of EncodeTo's output, computed without materializing the
  // bytes — hot read/append paths account sizes with this instead of
  // encoding into a throwaway buffer.
  uint64_t EncodedSizeBytes() const;

  std::string ToString() const;
};

// Receives every event of an execution, in order.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnEvent(const Event& event) = 0;
};

// Stores events in memory (tests, analyses, fidelity evaluation).
class CollectingSink : public TraceSink {
 public:
  // max_events bounds memory; 0 means unlimited.
  explicit CollectingSink(size_t max_events = 0) : max_events_(max_events) {}

  void OnEvent(const Event& event) override {
    if (max_events_ == 0 || events_.size() < max_events_) {
      events_.push_back(event);
    }
    ++total_;
  }

  const std::vector<Event>& events() const { return events_; }
  uint64_t total_seen() const { return total_; }
  void Clear() {
    events_.clear();
    total_ = 0;
  }

 private:
  size_t max_events_;
  std::vector<Event> events_;
  uint64_t total_ = 0;
};

// Computes a running fingerprint of the semantic event stream.
class FingerprintSink : public TraceSink {
 public:
  void OnEvent(const Event& event) override { fp_.Mix(event.SemanticHash()); }
  uint64_t fingerprint() const { return fp_.value(); }

 private:
  Fingerprint fp_;
};

}  // namespace ddr

#endif  // SRC_SIM_EVENT_H_
