// Simulated datagram network between nodes.
//
// Messages experience configurable latency (base + exponential jitter) and
// loss. Both are environment RNG draws, so delivery order and drops are
// recordable/replayable nondeterminism. Congestion faults from the
// environment's FaultPlan raise the drop probability during a window —
// this is the "network congestion" alternate root cause of §2/§4.

#ifndef SRC_SIM_NETWORK_H_
#define SRC_SIM_NETWORK_H_

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/environment.h"
#include "src/sim/types.h"

namespace ddr {

struct NetMessage {
  uint64_t id = 0;
  ObjectId src = kInvalidObject;
  ObjectId dst = kInvalidObject;
  uint64_t tag = 0;        // application-level message type
  std::string payload;     // opaque bytes (application-encoded)
  SimTime sent_at = 0;
  SimTime delivered_at = 0;
};

struct NetworkOptions {
  SimDuration base_latency = 50 * kMicrosecond;
  // Mean of the exponential jitter added to base latency (0 disables).
  SimDuration jitter_mean = 20 * kMicrosecond;
  // Baseline probability that a message is dropped.
  double drop_probability = 0.0;
};

class Network {
 public:
  Network(Environment& env, NetworkOptions options);

  // Creates a receive endpoint owned by `node`.
  ObjectId CreateEndpoint(NodeId node, const std::string& name);

  // Sends `payload` from src to dst. Returns the message id (also reported
  // in kNetSend/kNetDeliver/kNetDrop events).
  uint64_t Send(ObjectId src, ObjectId dst, uint64_t tag, std::string payload);

  // Blocks until a message arrives at `endpoint`. timeout < 0 waits forever;
  // returns nullopt on timeout. Fails the fiber if the endpoint's node died.
  std::optional<NetMessage> Recv(ObjectId endpoint, SimDuration timeout = -1);

  // Statistics (deterministic, for specs and tests).
  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  // Drops attributed to congestion-fault windows specifically.
  uint64_t congestion_drops() const { return congestion_drops_; }

  const NetworkOptions& options() const { return options_; }

 private:
  struct EndpointState {
    NodeId node = 0;
    ObjectId wait_queue = kInvalidObject;
    std::deque<NetMessage> inbox;
  };

  // Drop probability in effect at `when` (baseline or congestion window).
  double EffectiveDropProbability(SimTime when, bool* in_congestion) const;
  void Deliver(NetMessage message);
  void OnNodeCrash(NodeId node);

  Environment& env_;
  NetworkOptions options_;
  std::map<ObjectId, EndpointState> endpoints_;
  uint64_t next_message_id_ = 1;
  uint64_t messages_sent_ = 0;
  uint64_t messages_delivered_ = 0;
  uint64_t messages_dropped_ = 0;
  uint64_t congestion_drops_ = 0;
};

}  // namespace ddr

#endif  // SRC_SIM_NETWORK_H_
