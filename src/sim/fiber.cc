#include "src/sim/fiber.h"

#include <utility>

#include "src/util/logging.h"

namespace ddr {

Fiber::Fiber(FiberId id, NodeId node, std::string name)
    : id_(id), node_(node), name_(std::move(name)) {}

Fiber::~Fiber() {
  if (thread_.joinable()) {
    CHECK(state_ == State::kFinished)
        << "fiber '" << name_ << "' destroyed while not finished";
    thread_.join();
  }
}

void Fiber::Launch(std::function<void()> trampoline) {
  CHECK(!thread_.joinable()) << "fiber launched twice";
  thread_ = OsThread([this, fn = std::move(trampoline)] {
    WaitForResume();
    fn();
  });
}

}  // namespace ddr
