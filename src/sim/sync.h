// RAII wrappers over the environment's synchronization objects.
//
// These are what simulated programs use; they mirror std::mutex /
// std::condition_variable / counting semaphore idioms but schedule through
// the deterministic substrate and emit instrumentation events.

#ifndef SRC_SIM_SYNC_H_
#define SRC_SIM_SYNC_H_

#include <string>

#include "src/sim/environment.h"
#include "src/sim/types.h"

namespace ddr {

class SimMutex {
 public:
  SimMutex(Environment& env, const std::string& name)
      : env_(env), id_(env.CreateMutex(name)) {}

  void Lock() { env_.MutexLock(id_); }
  void Unlock() { env_.MutexUnlock(id_); }
  bool HeldByCurrent() const { return env_.MutexHeldByCurrent(id_); }

  ObjectId id() const { return id_; }
  Environment& env() { return env_; }

 private:
  Environment& env_;
  ObjectId id_;
};

// Scoped lock (analog of std::lock_guard).
class SimLock {
 public:
  explicit SimLock(SimMutex& mutex) : mutex_(mutex) { mutex_.Lock(); }
  ~SimLock() { mutex_.Unlock(); }

  SimLock(const SimLock&) = delete;
  SimLock& operator=(const SimLock&) = delete;

 private:
  SimMutex& mutex_;
};

class SimCondVar {
 public:
  SimCondVar(Environment& env, const std::string& name)
      : env_(env), id_(env.CreateCondVar(name)) {}

  // Atomically releases `mutex`, waits for Signal/Broadcast, reacquires.
  void Wait(SimMutex& mutex) { env_.CondWait(id_, mutex.id()); }

  template <typename Predicate>
  void WaitUntil(SimMutex& mutex, Predicate pred) {
    while (!pred()) {
      Wait(mutex);
    }
  }

  void Signal() { env_.CondSignal(id_); }
  void Broadcast() { env_.CondBroadcast(id_); }

  ObjectId id() const { return id_; }

 private:
  Environment& env_;
  ObjectId id_;
};

class SimSemaphore {
 public:
  SimSemaphore(Environment& env, const std::string& name, uint64_t initial)
      : env_(env), id_(env.CreateSemaphore(name, initial)) {}

  void Acquire() { env_.SemAcquire(id_); }
  void Release() { env_.SemRelease(id_); }

  ObjectId id() const { return id_; }

 private:
  Environment& env_;
  ObjectId id_;
};

// One-shot barrier: Arrive() blocks until `parties` fibers have arrived.
class SimBarrier {
 public:
  SimBarrier(Environment& env, const std::string& name, uint64_t parties)
      : env_(env),
        parties_(parties),
        queue_(env.CreateWaitQueue(name)),
        arrived_(env.CreateCell(name + ".arrived", 0)) {}

  void Arrive() {
    const uint64_t order = env_.CellRmw(arrived_, [](uint64_t v) { return v + 1; });
    if (order + 1 == parties_) {
      env_.NotifyAll(queue_);
      return;
    }
    // Re-check after waking: NotifyAll may race with late arrivals only in
    // the sense of FIFO wake order; the count is monotonic so one check
    // against the uninstrumented value suffices.
    while (env_.CellPeek(arrived_) < parties_) {
      env_.WaitOn(queue_);
    }
  }

 private:
  Environment& env_;
  uint64_t parties_;
  ObjectId queue_;
  ObjectId arrived_;
};

}  // namespace ddr

#endif  // SRC_SIM_SYNC_H_
