// Environment fault injection.
//
// Faults model the "other possible root causes" of §4: a slave crash after
// upload, a client OOM during dump, and network congestion. The inference
// engine also searches over fault plans when synthesizing executions for
// failure-deterministic replay.

#ifndef SRC_SIM_FAULT_H_
#define SRC_SIM_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/types.h"

namespace ddr {

enum class FaultKind : uint8_t {
  // Kills every fiber on `node` at virtual time `at_time`; the node stops
  // sending/receiving network messages.
  kCrashNode = 0,
  // The next CheckAlloc() on `node` at or after `at_time` fails (simulated
  // out-of-memory abort).
  kOomOnAlloc = 1,
  // Network drop probability is raised to `param` during
  // [at_time, at_time + duration].
  kCongestion = 2,
};

std::string FaultKindName(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kCrashNode;
  NodeId node = 0;
  SimTime at_time = 0;
  SimDuration duration = 0;  // kCongestion only
  double param = 0.0;        // kCongestion drop probability

  std::string ToString() const;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  void Add(FaultSpec spec) { faults_.push_back(spec); }
  const std::vector<FaultSpec>& faults() const { return faults_; }
  bool empty() const { return faults_.empty(); }

  static FaultPlan CrashNodeAt(NodeId node, SimTime time) {
    FaultPlan plan;
    plan.Add({.kind = FaultKind::kCrashNode, .node = node, .at_time = time});
    return plan;
  }

  static FaultPlan OomAt(NodeId node, SimTime time) {
    FaultPlan plan;
    plan.Add({.kind = FaultKind::kOomOnAlloc, .node = node, .at_time = time});
    return plan;
  }

  static FaultPlan CongestionWindow(SimTime start, SimDuration duration, double drop_prob) {
    FaultPlan plan;
    plan.Add({.kind = FaultKind::kCongestion,
              .node = kInvalidNode,
              .at_time = start,
              .duration = duration,
              .param = drop_prob});
    return plan;
  }

  std::string ToString() const;

 private:
  std::vector<FaultSpec> faults_;
};

}  // namespace ddr

#endif  // SRC_SIM_FAULT_H_
