// Cooperative fibers implemented as strictly hand-off-scheduled OS threads.
//
// Exactly one thread (either the scheduler or a single fiber) runs at any
// moment; control transfers through Baton handoffs. Because every transfer
// is explicit and the scheduler picks successors deterministically, an
// execution is a pure function of (program, seed, director) — the property
// the whole toolkit rests on.

#ifndef SRC_SIM_FIBER_H_
#define SRC_SIM_FIBER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/sim/types.h"
#include "src/util/thread_annotations.h"

namespace ddr {

// Thrown inside a fiber to unwind it when the environment tears it down
// (program end, node crash, abort). Deliberately not derived from
// std::exception so that application-level catch(std::exception&) blocks do
// not swallow it. Simulated code must not use catch(...).
struct FiberKilled {};

// One-shot-at-a-time handoff primitive.
class Baton {
 public:
  void Wait() {
    MutexLock lock(mutex_);
    while (!posted_) {
      cv_.Wait(mutex_);
    }
    posted_ = false;
  }

  void Post() {
    {
      MutexLock lock(mutex_);
      posted_ = true;
    }
    cv_.NotifyOne();
  }

 private:
  Mutex mutex_;
  CondVar cv_;
  bool posted_ GUARDED_BY(mutex_) = false;
};

// Why a blocked fiber resumed.
enum class WakeReason : uint8_t {
  kNotified = 0,
  kTimeout = 1,
  kKilled = 2,
};

class Fiber {
 public:
  enum class State : uint8_t {
    kRunnable,
    kRunning,
    kBlocked,
    kFinished,
  };

  Fiber(FiberId id, NodeId node, std::string name);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // Starts the backing thread; `trampoline` runs after the first Resume().
  void Launch(std::function<void()> trampoline);

  // Scheduler -> fiber control transfer.
  void Resume() { resume_baton_.Post(); }
  // Fiber-side: parks until the scheduler resumes this fiber.
  void WaitForResume() { resume_baton_.Wait(); }

  FiberId id() const { return id_; }
  NodeId node() const { return node_; }
  const std::string& name() const { return name_; }

  State state() const { return state_; }
  void set_state(State state) { state_ = state; }

  bool kill_requested() const { return kill_requested_; }
  void request_kill() { kill_requested_ = true; }

  WakeReason wake_reason() const { return wake_reason_; }
  void set_wake_reason(WakeReason reason) { wake_reason_ = reason; }

  // Monotonic counter distinguishing successive blocking episodes, so stale
  // timers cannot wake a later, unrelated wait.
  uint64_t block_generation() const { return block_generation_; }
  void bump_block_generation() { ++block_generation_; }

  // Object this fiber is currently blocked on (kInvalidObject for sleeps).
  ObjectId blocked_on() const { return blocked_on_; }
  void set_blocked_on(ObjectId obj) { blocked_on_ = obj; }

  // Current code-region stack (top = innermost region).
  std::vector<RegionId>& region_stack() { return region_stack_; }
  RegionId current_region() const {
    return region_stack_.empty() ? kDefaultRegion : region_stack_.back();
  }

  // Fibers waiting in Join() on this fiber.
  std::vector<FiberId>& joiners() { return joiners_; }

 private:
  const FiberId id_;
  const NodeId node_;
  const std::string name_;

  State state_ = State::kRunnable;
  bool kill_requested_ = false;
  WakeReason wake_reason_ = WakeReason::kNotified;
  uint64_t block_generation_ = 0;
  ObjectId blocked_on_ = kInvalidObject;

  std::vector<RegionId> region_stack_;
  std::vector<FiberId> joiners_;

  Baton resume_baton_;
  OsThread thread_;
};

}  // namespace ddr

#endif  // SRC_SIM_FIBER_H_
