#include "src/sim/event.h"

#include <sstream>

namespace ddr {

std::string_view EventTypeName(EventType type) {
  switch (type) {
    case EventType::kFiberCreate: return "FiberCreate";
    case EventType::kFiberExit: return "FiberExit";
    case EventType::kContextSwitch: return "ContextSwitch";
    case EventType::kFiberBlock: return "FiberBlock";
    case EventType::kFiberUnblock: return "FiberUnblock";
    case EventType::kMutexLock: return "MutexLock";
    case EventType::kMutexUnlock: return "MutexUnlock";
    case EventType::kCondWait: return "CondWait";
    case EventType::kCondSignal: return "CondSignal";
    case EventType::kCondBroadcast: return "CondBroadcast";
    case EventType::kSemAcquire: return "SemAcquire";
    case EventType::kSemRelease: return "SemRelease";
    case EventType::kSharedRead: return "SharedRead";
    case EventType::kSharedWrite: return "SharedWrite";
    case EventType::kSharedRmw: return "SharedRmw";
    case EventType::kInput: return "Input";
    case EventType::kOutput: return "Output";
    case EventType::kRngDraw: return "RngDraw";
    case EventType::kChannelSend: return "ChannelSend";
    case EventType::kChannelRecv: return "ChannelRecv";
    case EventType::kNetSend: return "NetSend";
    case EventType::kNetDeliver: return "NetDeliver";
    case EventType::kNetRecv: return "NetRecv";
    case EventType::kNetDrop: return "NetDrop";
    case EventType::kClockRead: return "ClockRead";
    case EventType::kSleep: return "Sleep";
    case EventType::kDiskWrite: return "DiskWrite";
    case EventType::kDiskRead: return "DiskRead";
    case EventType::kRegionEnter: return "RegionEnter";
    case EventType::kRegionExit: return "RegionExit";
    case EventType::kAnnotation: return "Annotation";
    case EventType::kFailure: return "Failure";
    case EventType::kFaultInject: return "FaultInject";
    case EventType::kTriggerFire: return "TriggerFire";
    case EventType::kNodeCrash: return "NodeCrash";
  }
  return "Unknown";
}

std::string_view FailureKindName(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNone: return "None";
    case FailureKind::kCrash: return "Crash";
    case FailureKind::kSpecViolation: return "SpecViolation";
    case FailureKind::kPerformance: return "Performance";
    case FailureKind::kDeadlock: return "Deadlock";
    case FailureKind::kOom: return "Oom";
  }
  return "Unknown";
}

namespace {

inline uint64_t VarintLen(uint64_t value) {
  uint64_t length = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++length;
  }
  return length;
}

}  // namespace

uint64_t Event::EncodedSizeBytes() const {
  // Mirrors EncodeTo field for field: nine varints plus the fixed8 type.
  return VarintLen(seq) + VarintLen(static_cast<uint64_t>(time)) +
         VarintLen(fiber) + VarintLen(node) + 1 + VarintLen(obj) +
         VarintLen(value) + VarintLen(aux) + VarintLen(region) +
         VarintLen(bytes);
}

void Event::EncodeTo(Encoder* encoder) const {
  encoder->PutVarint64(seq);
  encoder->PutVarint64(time);
  encoder->PutVarint64(fiber);
  encoder->PutVarint64(node);
  encoder->PutFixed8(static_cast<uint8_t>(type));
  encoder->PutVarint64(obj);
  encoder->PutVarint64(value);
  encoder->PutVarint64(aux);
  encoder->PutVarint64(region);
  encoder->PutVarint64(bytes);
}

Result<Event> Event::DecodeFrom(Decoder* decoder) {
  Event event;
  ASSIGN_OR_RETURN(event.seq, decoder->GetVarint64());
  ASSIGN_OR_RETURN(event.time, decoder->GetVarint64());
  ASSIGN_OR_RETURN(uint64_t fiber, decoder->GetVarint64());
  event.fiber = static_cast<FiberId>(fiber);
  ASSIGN_OR_RETURN(uint64_t node, decoder->GetVarint64());
  event.node = static_cast<NodeId>(node);
  ASSIGN_OR_RETURN(uint8_t type, decoder->GetFixed8());
  // Validate at the decode chokepoint: EventLog's per-type counters index
  // by type, so a crafted byte must fail here with a Status, never reach
  // an out-of-bounds counter write.
  if (type > static_cast<uint8_t>(EventType::kNodeCrash)) {
    return InvalidArgumentError("unknown event type in encoded event");
  }
  event.type = static_cast<EventType>(type);
  ASSIGN_OR_RETURN(event.obj, decoder->GetVarint64());
  ASSIGN_OR_RETURN(event.value, decoder->GetVarint64());
  ASSIGN_OR_RETURN(event.aux, decoder->GetVarint64());
  ASSIGN_OR_RETURN(uint64_t region, decoder->GetVarint64());
  event.region = static_cast<RegionId>(region);
  ASSIGN_OR_RETURN(uint64_t bytes, decoder->GetVarint64());
  event.bytes = static_cast<uint32_t>(bytes);
  return event;
}

std::string Event::ToString() const {
  std::ostringstream os;
  os << "#" << seq << " t=" << time << " f" << fiber << "@n" << node << " "
     << EventTypeName(type) << " obj=" << static_cast<int64_t>(obj)
     << " val=" << value;
  if (aux != 0) {
    os << " aux=" << aux;
  }
  if (bytes != 0) {
    os << " bytes=" << bytes;
  }
  if (region != kDefaultRegion) {
    os << " region=" << region;
  }
  return os.str();
}

}  // namespace ddr
