// Execution outcomes: observable outputs, failures, and run statistics.
//
// The paper defines a failure as "incorrect output according to an I/O
// specification", where output includes all observable behavior, including
// performance characteristics. Outcome captures exactly that observable
// behavior; IoSpec judges it.

#ifndef SRC_SIM_OUTCOME_H_
#define SRC_SIM_OUTCOME_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/event.h"
#include "src/sim/types.h"
#include "src/util/hash.h"

namespace ddr {

struct OutputRecord {
  NodeId node = 0;
  uint64_t value = 0;
  uint32_t bytes = 0;
  SimTime time = 0;
};

struct FailureInfo {
  FailureKind kind = FailureKind::kNone;
  std::string message;
  NodeId node = 0;
  FiberId fiber = kInvalidFiber;
  ObjectId obj = kInvalidObject;
  uint64_t detail = 0;
  SimTime time = 0;

  // Identity of the failure for snapshot matching: kind + message + node.
  // Excludes time/fiber so that an inferred execution reaching the same
  // failure through different timing still matches.
  uint64_t Fingerprint() const {
    uint64_t h = kFnvOffsetBasis;
    h = HashCombine(h, static_cast<uint64_t>(kind));
    h = FnvHash(message, h);
    h = HashCombine(h, node);
    return h;
  }

  std::string ToString() const;
};

struct RunStats {
  uint64_t events = 0;
  uint64_t context_switches = 0;
  uint64_t decision_points = 0;
  SimTime virtual_duration = 0;
  double wall_seconds = 0.0;
  bool hit_event_limit = false;
  bool hit_time_limit = false;
  bool deadlocked = false;
};

struct Outcome {
  std::vector<OutputRecord> outputs;
  std::vector<FailureInfo> failures;
  RunStats stats;
  // Fingerprint of the semantic event stream (scheduling, values, I/O).
  uint64_t trace_fingerprint = 0;
  // Fingerprint of outputs only (what output determinism must reproduce).
  uint64_t output_fingerprint = 0;

  bool Failed() const { return !failures.empty(); }

  const FailureInfo* primary_failure() const {
    return failures.empty() ? nullptr : &failures.front();
  }

  uint64_t SumOfOutputValues() const {
    uint64_t sum = 0;
    for (const auto& record : outputs) {
      sum += record.value;
    }
    return sum;
  }
};

// I/O specification: inspects the observable behavior of a finished
// execution and reports a failure if the behavior is out of spec. Returning
// nullopt means the execution conformed.
using IoSpec = std::function<std::optional<FailureInfo>(const Outcome&)>;

}  // namespace ddr

#endif  // SRC_SIM_OUTCOME_H_
