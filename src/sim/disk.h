// Simulated append-only disk (commit logs, sstable-ish blobs).
//
// Writes incur a size-dependent latency; contents persist across node
// crashes (a crashed node's disk survives, mirroring real deployments).

#ifndef SRC_SIM_DISK_H_
#define SRC_SIM_DISK_H_

#include <string>
#include <vector>

#include "src/sim/environment.h"
#include "src/sim/types.h"

namespace ddr {

struct DiskOptions {
  SimDuration seek_latency = 100 * kMicrosecond;
  // Additional latency per byte written/read.
  SimDuration per_byte = 10 * kNanosecond;
};

class SimDisk {
 public:
  SimDisk(Environment& env, const std::string& name, DiskOptions options = DiskOptions());

  // Appends a record; blocks for the simulated write latency. Returns the
  // record's index.
  size_t Append(std::string record);

  // Reads record `index`; blocks for the simulated read latency.
  std::string Read(size_t index);

  size_t num_records() const { return records_.size(); }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  Environment& env_;
  ObjectId id_;
  DiskOptions options_;
  std::vector<std::string> records_;
  uint64_t bytes_written_ = 0;
};

}  // namespace ddr

#endif  // SRC_SIM_DISK_H_
