// SimProgram: the unit of execution the toolkit records, replays, and
// debugs.
//
// A program is run many times — as the "production" run, as training runs
// for invariant inference, and as replay/inference candidates — so programs
// must create all their simulated objects inside Configure()/Main() (never
// in their own constructors) and must be reusable across Environments.

#ifndef SRC_SIM_PROGRAM_H_
#define SRC_SIM_PROGRAM_H_

#include <string>

namespace ddr {

class Environment;

class SimProgram {
 public:
  virtual ~SimProgram() = default;

  virtual std::string name() const = 0;

  // Called once before the root fiber starts: register regions, input
  // sources, I/O specs. Object ids are assigned in call order, so a given
  // program yields identical ids in every Environment.
  virtual void Configure(Environment& env) { (void)env; }

  // Body of the root fiber. Spawns worker fibers, runs the workload.
  virtual void Main(Environment& env) = 0;
};

}  // namespace ddr

#endif  // SRC_SIM_PROGRAM_H_
