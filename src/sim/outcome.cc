#include "src/sim/outcome.h"

#include <sstream>

namespace ddr {

std::string FailureInfo::ToString() const {
  std::ostringstream os;
  os << FailureKindName(kind) << "@node" << node;
  if (fiber != kInvalidFiber) {
    os << "/f" << fiber;
  }
  os << " t=" << time << ": " << message;
  return os.str();
}

}  // namespace ddr
