#include "src/sim/fault.h"

#include <sstream>

namespace ddr {

std::string FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrashNode:
      return "CrashNode";
    case FaultKind::kOomOnAlloc:
      return "OomOnAlloc";
    case FaultKind::kCongestion:
      return "Congestion";
  }
  return "Unknown";
}

std::string FaultSpec::ToString() const {
  std::ostringstream os;
  os << FaultKindName(kind) << "(node=" << node << ", t=" << at_time;
  if (kind == FaultKind::kCongestion) {
    os << ", dur=" << duration << ", p=" << param;
  }
  os << ")";
  return os.str();
}

std::string FaultPlan::ToString() const {
  if (faults_.empty()) {
    return "(no faults)";
  }
  std::ostringstream os;
  for (size_t i = 0; i < faults_.size(); ++i) {
    if (i > 0) {
      os << "; ";
    }
    os << faults_[i].ToString();
  }
  return os.str();
}

}  // namespace ddr
