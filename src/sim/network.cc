#include "src/sim/network.h"

#include <utility>

#include "src/util/hash.h"
#include "src/util/logging.h"

namespace ddr {

Network::Network(Environment& env, NetworkOptions options)
    : env_(env), options_(options) {
  env_.AddNodeCrashListener([this](NodeId node) { OnNodeCrash(node); });
}

ObjectId Network::CreateEndpoint(NodeId node, const std::string& name) {
  const ObjectId id = env_.RegisterObject(ObjectKind::kEndpoint, name, node);
  EndpointState state;
  state.node = node;
  state.wait_queue = env_.CreateWaitQueue(name + ".waiters");
  endpoints_.emplace(id, std::move(state));
  return id;
}

double Network::EffectiveDropProbability(SimTime when, bool* in_congestion) const {
  *in_congestion = false;
  double probability = options_.drop_probability;
  for (const FaultSpec& fault : env_.fault_plan().faults()) {
    if (fault.kind != FaultKind::kCongestion) {
      continue;
    }
    if (when >= fault.at_time &&
        when <= fault.at_time + static_cast<SimTime>(fault.duration)) {
      probability = std::max(probability, fault.param);
      *in_congestion = true;
    }
  }
  return probability;
}

uint64_t Network::Send(ObjectId src, ObjectId dst, uint64_t tag, std::string payload) {
  auto dst_it = endpoints_.find(dst);
  CHECK(dst_it != endpoints_.end()) << "send to unknown endpoint " << dst;

  NetMessage message;
  message.id = next_message_id_++;
  message.src = src;
  message.dst = dst;
  message.tag = tag;
  message.payload = std::move(payload);
  message.sent_at = env_.Now();
  ++messages_sent_;

  const uint32_t bytes = static_cast<uint32_t>(message.payload.size());
  env_.EmitLibraryEvent(EventType::kNetSend, dst, message.id, tag, bytes);

  // Destination node already dead: silent drop (reason 1 = dead node).
  if (!env_.NodeAlive(dst_it->second.node)) {
    ++messages_dropped_;
    env_.EmitLibraryEvent(EventType::kNetDrop, dst, message.id, 1, bytes,
                          /*preempt=*/false);
    return message.id;
  }

  bool in_congestion = false;
  const double drop_probability = EffectiveDropProbability(message.sent_at, &in_congestion);
  if (drop_probability > 0.0) {
    const uint64_t draw = env_.RngDraw(RngPurpose::kNetDrop, 1'000'000);
    if (static_cast<double>(draw) < drop_probability * 1'000'000.0) {
      ++messages_dropped_;
      if (in_congestion) {
        ++congestion_drops_;
      }
      env_.EmitLibraryEvent(EventType::kNetDrop, dst, message.id,
                            in_congestion ? 2 : 3, bytes, /*preempt=*/false);
      return message.id;
    }
  }

  SimDuration latency = options_.base_latency;
  if (options_.jitter_mean > 0) {
    // Draw jitter in [0, 4 * mean) from the replayable RNG stream.
    const uint64_t jitter =
        env_.RngDraw(RngPurpose::kNetLatency,
                     static_cast<uint64_t>(4 * options_.jitter_mean));
    latency += static_cast<SimDuration>(jitter);
  }

  const SimTime deliver_at = env_.Now() + static_cast<SimTime>(latency);
  env_.ScheduleCallbackAt(deliver_at, [this, message = std::move(message)]() mutable {
    message.delivered_at = env_.Now();
    Deliver(std::move(message));
  });
  return next_message_id_ - 1;
}

void Network::Deliver(NetMessage message) {
  auto it = endpoints_.find(message.dst);
  if (it == endpoints_.end() || !env_.NodeAlive(it->second.node)) {
    ++messages_dropped_;
    return;
  }
  const uint32_t bytes = static_cast<uint32_t>(message.payload.size());
  env_.EmitLibraryEvent(EventType::kNetDeliver, message.dst, message.id, message.tag,
                        bytes, /*preempt=*/false);
  it->second.inbox.push_back(std::move(message));
  env_.NotifyOne(it->second.wait_queue);
  ++messages_delivered_;
}

std::optional<NetMessage> Network::Recv(ObjectId endpoint, SimDuration timeout) {
  auto it = endpoints_.find(endpoint);
  CHECK(it != endpoints_.end()) << "recv on unknown endpoint " << endpoint;
  EndpointState& state = it->second;
  while (state.inbox.empty()) {
    const WakeReason reason = env_.WaitOn(state.wait_queue, timeout);
    if (reason == WakeReason::kTimeout && state.inbox.empty()) {
      return std::nullopt;
    }
  }
  NetMessage message = std::move(state.inbox.front());
  state.inbox.pop_front();
  env_.EmitLibraryEvent(EventType::kNetRecv, endpoint, message.id, message.tag,
                        static_cast<uint32_t>(message.payload.size()),
                        /*preempt=*/false);
  return message;
}

void Network::OnNodeCrash(NodeId node) {
  for (auto& [id, state] : endpoints_) {
    if (state.node == node) {
      state.inbox.clear();
    }
  }
}

}  // namespace ddr
