#include "src/sim/environment.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/sim/program.h"
#include "src/util/logging.h"

namespace ddr {

Environment::Environment(Options options)
    : options_(options), scheduler_rng_(options.seed) {
  node_names_.push_back("node0");
  node_alive_.push_back(true);
  region_names_.push_back("(default)");
}

Environment::~Environment() {
  // Fibers are drained and destroyed at the end of Run(); if Run() was never
  // called there is nothing to clean up.
  CHECK(fibers_.empty()) << "environment destroyed with live fibers";
}

void Environment::AddTraceSink(TraceSink* sink) {
  CHECK(!started_) << "sinks must be added before Run()";
  CHECK(sink != nullptr);
  sinks_.push_back(sink);
}

void Environment::SetDirector(ExecutionDirector* director) {
  CHECK(!started_) << "director must be set before Run()";
  director_ = director;
}

void Environment::SetFaultPlan(FaultPlan plan) {
  CHECK(!started_);
  fault_plan_ = std::move(plan);
}

void Environment::SetIoSpec(IoSpec spec) {
  // Programs register their spec from Configure(), which runs inside Run().
  io_spec_ = std::move(spec);
}

// ------------------------------------------------------------------- run

Outcome Environment::Run(SimProgram& program) {
  CHECK(!started_) << "Run() may be called only once per Environment";
  started_ = true;
  if (director_ == nullptr) {
    default_director_ = std::make_unique<DefaultDirector>(options_.scheduling);
    director_ = default_director_.get();
  }

  program.Configure(*this);
  ArmFaultPlan();

  const auto wall_start = std::chrono::steady_clock::now();
  Spawn("main", [this, &program] { program.Main(*this); });
  SchedulerLoop();
  ShutdownAllFibers();

  outcome_.stats.events = next_event_seq_;
  outcome_.stats.context_switches = context_switches_;
  outcome_.stats.decision_points = decision_seq_;
  outcome_.stats.virtual_duration = now_;
  outcome_.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  if (io_spec_) {
    if (auto violation = io_spec_(outcome_); violation.has_value()) {
      violation->time = now_;
      outcome_.failures.push_back(*std::move(violation));
    }
  }
  outcome_.trace_fingerprint = fingerprint_sink_.fingerprint();
  outcome_.output_fingerprint = output_fingerprint_.value();

  fibers_.clear();  // joins all backing threads
  return outcome_;
}

Outcome Environment::Run(const std::string& name, std::function<void(Environment&)> main_fn) {
  class FunctionProgram : public SimProgram {
   public:
    FunctionProgram(std::string name, std::function<void(Environment&)> fn)
        : name_(std::move(name)), fn_(std::move(fn)) {}
    std::string name() const override { return name_; }
    void Main(Environment& env) override { fn_(env); }

   private:
    std::string name_;
    std::function<void(Environment&)> fn_;
  };
  FunctionProgram program(name, std::move(main_fn));
  return Run(program);
}

// -------------------------------------------------------------- scheduler

void Environment::SchedulerLoop() {
  while (!stop_requested_) {
    FireDueTimers();
    if (stop_requested_) {
      break;
    }
    if (runnable_.empty()) {
      if (live_fibers_ == 0) {
        break;  // all fibers finished
      }
      if (timer_heap_.empty()) {
        ReportDeadlock();
        break;
      }
      if (!AdvanceToNextTimer()) {
        break;
      }
      continue;
    }
    std::sort(runnable_.begin(), runnable_.end());
    const FiberId next =
        director_->PickNextFiber(*this, runnable_, context_switches_);
    const auto it = std::find(runnable_.begin(), runnable_.end(), next);
    CHECK(it != runnable_.end())
        << "director picked non-runnable fiber " << next;
    runnable_.erase(it);

    ++context_switches_;
    EmitSwitch(last_running_, next);

    Fiber* f = fiber(next);
    f->set_state(Fiber::State::kRunning);
    current_ = f;
    in_scheduler_context_ = false;
    f->Resume();
    sched_baton_.Wait();
    in_scheduler_context_ = true;
    current_ = nullptr;
    last_running_ = next;
  }
}

void Environment::FireDueTimers() {
  while (!timer_heap_.empty() && timer_heap_.front().when <= now_) {
    Timer timer = PopTimer();
    if (timer.is_callback) {
      timer.callback();
      if (stop_requested_) {
        return;
      }
      continue;
    }
    Fiber* f = fiber(timer.fiber);
    if (f == nullptr || f->state() != Fiber::State::kBlocked ||
        f->block_generation() != timer.generation) {
      continue;  // stale timer
    }
    if (f->blocked_on() != kInvalidObject) {
      RemoveFromWaitList(f->blocked_on(), f->id());
    }
    WakeFiber(f->id(), WakeReason::kTimeout);
  }
}

bool Environment::AdvanceToNextTimer() {
  CHECK(!timer_heap_.empty());
  const SimTime target = timer_heap_.front().when;
  if (target > now_) {
    now_ = target;
    if (options_.max_virtual_time != 0 && now_ > options_.max_virtual_time) {
      outcome_.stats.hit_time_limit = true;
      stop_requested_ = true;
      return false;
    }
  }
  return true;
}

void Environment::PushTimer(Timer timer) {
  timer.seq = next_timer_seq_++;
  timer_heap_.push_back(std::move(timer));
  std::push_heap(timer_heap_.begin(), timer_heap_.end(),
                 [](const Timer& a, const Timer& b) {
                   return a.when > b.when || (a.when == b.when && a.seq > b.seq);
                 });
}

Environment::Timer Environment::PopTimer() {
  std::pop_heap(timer_heap_.begin(), timer_heap_.end(),
                [](const Timer& a, const Timer& b) {
                  return a.when > b.when || (a.when == b.when && a.seq > b.seq);
                });
  Timer timer = std::move(timer_heap_.back());
  timer_heap_.pop_back();
  return timer;
}

void Environment::ShutdownAllFibers() {
  shutting_down_ = true;
  // Drive every unfinished fiber to completion. Unwinding may wake other
  // fibers (e.g. mutex unlocks in destructors); iterate until quiescent.
  int rounds = 0;
  while (live_fibers_ > 0) {
    CHECK_LT(rounds++, 1000) << "fiber shutdown did not converge";
    for (auto& owned : fibers_) {
      Fiber* f = owned.get();
      if (f->state() == Fiber::State::kFinished) {
        continue;
      }
      f->request_kill();
      f->set_state(Fiber::State::kRunning);
      current_ = f;
      in_scheduler_context_ = false;
      f->Resume();
      sched_baton_.Wait();
      in_scheduler_context_ = true;
      current_ = nullptr;
    }
  }
  runnable_.clear();
  timer_heap_.clear();
}

void Environment::ReportDeadlock() {
  std::string blocked;
  for (const auto& owned : fibers_) {
    if (owned->state() == Fiber::State::kBlocked) {
      if (!blocked.empty()) {
        blocked += ", ";
      }
      blocked += owned->name();
    }
  }
  FailureInfo failure;
  failure.kind = FailureKind::kDeadlock;
  failure.message = "deadlock: blocked fibers: " + blocked;
  failure.node = 0;
  failure.time = now_;
  outcome_.failures.push_back(failure);
  outcome_.stats.deadlocked = true;
  Emit(EventType::kFailure, static_cast<ObjectId>(FailureKind::kDeadlock),
       FnvHash(failure.message), 0, 0);
}

// ------------------------------------------------------------------ fibers

Fiber* Environment::fiber(FiberId id) const {
  if (id >= fibers_.size()) {
    return nullptr;
  }
  return fibers_[id].get();
}

FiberId Environment::CurrentFiberId() const {
  return current_ != nullptr ? current_->id() : kInvalidFiber;
}

NodeId Environment::CurrentNode() const {
  return current_ != nullptr ? current_->node() : 0;
}

const std::string& Environment::FiberName(FiberId id) const {
  Fiber* f = fiber(id);
  static const std::string kUnknown = "(none)";
  return f != nullptr ? f->name() : kUnknown;
}

FiberId Environment::Spawn(const std::string& name, std::function<void()> body) {
  return SpawnOnNode(CurrentNode(), name, std::move(body));
}

FiberId Environment::SpawnOnNode(NodeId node, const std::string& name,
                                 std::function<void()> body) {
  CHECK(started_) << "Spawn is only valid during Run()";
  CHECK_LT(node, node_names_.size());
  CHECK(NodeAlive(node)) << "spawn on crashed node " << node;
  const FiberId id = static_cast<FiberId>(fibers_.size());
  auto owned = std::make_unique<Fiber>(id, node, name);
  Fiber* f = owned.get();
  fiber_object_ids_.push_back(RegisterObject(ObjectKind::kFiber, name, node));
  ++live_fibers_;
  f->Launch([this, f, fn = std::move(body)] { FiberTrampoline(f, fn); });
  fibers_.push_back(std::move(owned));
  MakeRunnable(id);
  Emit(EventType::kFiberCreate, fiber_object_ids_[id], id, 0, 0);
  MaybePreempt();
  return id;
}

void Environment::FiberTrampoline(Fiber* f, const std::function<void()>& body) {
  if (!f->kill_requested()) {
    try {
      body();
    } catch (const FiberKilled&) {
      // Normal teardown path.
    } catch (const std::exception& e) {
      LOG(FATAL) << "uncaught exception in fiber '" << f->name() << "': " << e.what();
    }
  }
  f->set_state(Fiber::State::kFinished);
  CHECK_GT(live_fibers_, 0u);
  --live_fibers_;
  if (!shutting_down_) {
    Emit(EventType::kFiberExit, fiber_object_ids_[f->id()], 0, 0, 0);
  }
  const ObjectId join_obj = fiber_object_ids_[f->id()];
  for (const FiberId joiner : f->joiners()) {
    RemoveFromWaitList(join_obj, joiner);
    WakeFiber(joiner, WakeReason::kNotified);
  }
  f->joiners().clear();
  if (f->id() == 0) {
    // Root fiber exit ends the run (process-exit semantics): daemon fibers
    // blocked in server loops do not count as a deadlock.
    stop_requested_ = true;
  }
  last_switch_cause_ = SwitchCause::kExit;
  sched_baton_.Post();
}

void Environment::SwitchOut(Fiber::State new_state) {
  Fiber* f = current_;
  CHECK(f != nullptr) << "SwitchOut outside fiber context";
  f->set_state(new_state);
  if (new_state == Fiber::State::kRunnable) {
    MakeRunnable(f->id());
  }
  sched_baton_.Post();
  f->WaitForResume();
  if (f->kill_requested()) {
    throw FiberKilled{};
  }
}

WakeReason Environment::BlockCurrent(ObjectId obj, SimDuration timeout) {
  Fiber* f = current_;
  CHECK(f != nullptr) << "blocking operation outside fiber context";
  if (shutting_down_ || f->kill_requested()) {
    throw FiberKilled{};
  }
  f->bump_block_generation();
  f->set_blocked_on(obj);
  f->set_wake_reason(WakeReason::kNotified);
  if (obj != kInvalidObject) {
    wait_lists_[obj].push_back(f->id());
    Emit(EventType::kFiberBlock, obj, 0, 0, 0);
  }
  if (timeout >= 0) {
    Timer timer;
    timer.when = now_ + static_cast<SimTime>(timeout);
    timer.fiber = f->id();
    timer.generation = f->block_generation();
    PushTimer(std::move(timer));
  }
  last_switch_cause_ = SwitchCause::kBlocked;
  SwitchOut(Fiber::State::kBlocked);
  return f->wake_reason();
}

void Environment::WakeFiber(FiberId id, WakeReason reason) {
  Fiber* f = fiber(id);
  CHECK(f != nullptr);
  if (f->state() != Fiber::State::kBlocked) {
    return;
  }
  // Happens-before edge: the waker (current fiber, or scheduler for timer
  // wakes) releases-to the woken fiber. Race detectors consume this.
  if (reason == WakeReason::kNotified && !shutting_down_) {
    Emit(EventType::kFiberUnblock, f->blocked_on(), id, 0, 0);
  }
  f->set_wake_reason(reason);
  f->set_blocked_on(kInvalidObject);
  f->bump_block_generation();  // invalidate any pending timeout timer
  MakeRunnable(id);
}

void Environment::RemoveFromWaitList(ObjectId obj, FiberId id) {
  auto it = wait_lists_.find(obj);
  if (it == wait_lists_.end()) {
    return;
  }
  auto& queue = it->second;
  for (auto q = queue.begin(); q != queue.end(); ++q) {
    if (*q == id) {
      queue.erase(q);
      return;
    }
  }
}

void Environment::KillFiber(FiberId id) {
  Fiber* f = fiber(id);
  CHECK(f != nullptr);
  CHECK(f != current_) << "KillFiber on the running fiber";
  if (f->state() == Fiber::State::kFinished) {
    return;
  }
  f->request_kill();
  if (f->state() == Fiber::State::kBlocked) {
    if (f->blocked_on() != kInvalidObject) {
      RemoveFromWaitList(f->blocked_on(), id);
    }
    WakeFiber(id, WakeReason::kKilled);
  }
}

void Environment::MakeRunnable(FiberId id) {
  Fiber* f = fiber(id);
  CHECK(f != nullptr);
  f->set_state(Fiber::State::kRunnable);
  runnable_.push_back(id);
}

void Environment::Join(FiberId target_id) {
  Fiber* self = current_;
  CHECK(self != nullptr) << "Join outside fiber context";
  Fiber* target = fiber(target_id);
  CHECK(target != nullptr) << "Join on unknown fiber";
  if (target->state() == Fiber::State::kFinished) {
    // Fast path: still a synchronization edge (target's kFiberExit released
    // into its join object; this acquire completes the happens-before pair).
    Emit(EventType::kFiberUnblock, fiber_object_ids_[target_id], self->id(), 0, 0);
    return;
  }
  target->joiners().push_back(self->id());
  BlockCurrent(fiber_object_ids_[target_id], -1);
}

void Environment::Yield() {
  CHECK(current_ != nullptr) << "Yield outside fiber context";
  last_switch_cause_ = SwitchCause::kYield;
  SwitchOut(Fiber::State::kRunnable);
}

void Environment::SleepFor(SimDuration duration) {
  CHECK(current_ != nullptr) << "SleepFor outside fiber context";
  CHECK_GE(duration, 0);
  Emit(EventType::kSleep, kInvalidObject, static_cast<uint64_t>(duration), 0, 0);
  BlockCurrent(kInvalidObject, duration);
}

SimTime Environment::ReadClock() {
  MaybePreempt();
  Emit(EventType::kClockRead, kInvalidObject, now_, 0, 0);
  return now_;
}

// --------------------------------------------------------------------- I/O

ObjectId Environment::RegisterInputSource(const std::string& name,
                                          std::function<uint64_t()> generator) {
  const ObjectId id = RegisterObject(ObjectKind::kInputSource, name, CurrentNode());
  inputs_[id].generator = std::move(generator);
  return id;
}

uint64_t Environment::ReadInput(ObjectId source, uint32_t bytes) {
  MaybePreempt();
  auto it = inputs_.find(source);
  CHECK(it != inputs_.end()) << "unknown input source " << source;
  uint64_t value = 0;
  if (!director_->OverrideInput(*this, source, &value)) {
    value = it->second.generator();
  }
  Emit(EventType::kInput, source, value, 0, bytes);
  return value;
}

void Environment::EmitOutput(uint64_t value, uint32_t bytes) {
  MaybePreempt();
  OutputRecord record;
  record.node = CurrentNode();
  record.value = value;
  record.bytes = bytes;
  record.time = now_;
  outcome_.outputs.push_back(record);
  output_fingerprint_.Mix(value);
  Emit(EventType::kOutput, kInvalidObject, value, 0, bytes);
}

uint64_t Environment::RngDraw(RngPurpose purpose, uint64_t bound) {
  MaybePreempt();
  uint64_t value = 0;
  if (!director_->OverrideRngDraw(*this, purpose, &value)) {
    value = bound == 0 ? scheduler_rng_.Next() : scheduler_rng_.NextBelow(bound);
  }
  Emit(EventType::kRngDraw, static_cast<ObjectId>(purpose), value, 0, 0);
  return value;
}

void Environment::Annotate(uint64_t tag, uint64_t value) {
  Emit(EventType::kAnnotation, tag, value, 0, 0);
}

void Environment::CheckAlloc(uint32_t bytes) {
  MaybePreempt();
  const NodeId node = CurrentNode();
  for (auto it = armed_oom_.begin(); it != armed_oom_.end(); ++it) {
    if (it->first == node && now_ >= it->second) {
      armed_oom_.erase(it);
      Abort(FailureKind::kOom, "out of memory on " + node_name(node));
    }
  }
  (void)bytes;
}

bool Environment::TryAlloc(uint32_t bytes) {
  MaybePreempt();
  const NodeId node = CurrentNode();
  for (auto it = armed_oom_.begin(); it != armed_oom_.end(); ++it) {
    if (it->first == node && now_ >= it->second) {
      armed_oom_.erase(it);
      Emit(EventType::kFaultInject, static_cast<ObjectId>(FaultKind::kOomOnAlloc),
           node, 0, bytes);
      return false;
    }
  }
  return true;
}

void Environment::Abort(FailureKind kind, const std::string& message) {
  Fiber* f = current_;
  CHECK(f != nullptr) << "Abort outside fiber context";
  FailureInfo failure;
  failure.kind = kind;
  failure.message = message;
  failure.node = f->node();
  failure.fiber = f->id();
  failure.time = now_;
  failure.detail = FnvHash(message);
  outcome_.failures.push_back(failure);
  Emit(EventType::kFailure, static_cast<ObjectId>(kind), FnvHash(message), 0, 0);
  if (options_.stop_on_first_failure) {
    stop_requested_ = true;
  }
  f->request_kill();
  throw FiberKilled{};
}

// ------------------------------------------------------------------ regions

RegionId Environment::RegisterRegion(const std::string& name) {
  region_names_.push_back(name);
  return static_cast<RegionId>(region_names_.size() - 1);
}

void Environment::EnterRegion(RegionId region) {
  CHECK(current_ != nullptr) << "EnterRegion outside fiber context";
  CHECK_LT(region, region_names_.size());
  current_->region_stack().push_back(region);
  Emit(EventType::kRegionEnter, region, 0, 0, 0);
}

void Environment::ExitRegion(RegionId region) {
  CHECK(current_ != nullptr);
  CHECK(!current_->region_stack().empty());
  CHECK_EQ(current_->region_stack().back(), region);
  if (!shutting_down_) {
    Emit(EventType::kRegionExit, region, 0, 0, 0);
  }
  current_->region_stack().pop_back();
}

const std::string& Environment::region_name(RegionId region) const {
  CHECK_LT(region, region_names_.size());
  return region_names_[region];
}

RegionId Environment::CurrentRegion() const {
  return current_ != nullptr ? current_->current_region() : kDefaultRegion;
}

// ------------------------------------------------------------------- sync

ObjectId Environment::CreateMutex(const std::string& name) {
  const ObjectId id = RegisterObject(ObjectKind::kMutex, name, CurrentNode());
  mutexes_[id] = MutexState{};
  return id;
}

void Environment::MutexLock(ObjectId mutex) {
  MaybePreempt();
  auto it = mutexes_.find(mutex);
  CHECK(it != mutexes_.end()) << "unknown mutex " << mutex;
  MutexState& state = it->second;
  CHECK(state.owner != CurrentFiberId()) << "recursive lock of "
                                         << object_info(mutex).name;
  while (state.locked) {
    BlockCurrent(mutex, -1);
  }
  state.locked = true;
  state.owner = CurrentFiberId();
  ++state.lock_count;
  Emit(EventType::kMutexLock, mutex, 0, 0, 0);
}

void Environment::MutexUnlock(ObjectId mutex) {
  auto it = mutexes_.find(mutex);
  CHECK(it != mutexes_.end());
  MutexState& state = it->second;
  CHECK(state.locked) << "unlock of unlocked mutex " << object_info(mutex).name;
  CHECK(state.owner == CurrentFiberId())
      << "unlock of mutex " << object_info(mutex).name << " by non-owner";
  state.locked = false;
  state.owner = kInvalidFiber;
  if (!shutting_down_) {
    Emit(EventType::kMutexUnlock, mutex, 0, 0, 0);
  }
  auto wl = wait_lists_.find(mutex);
  if (wl != wait_lists_.end() && !wl->second.empty()) {
    const FiberId next = wl->second.front();
    wl->second.pop_front();
    WakeFiber(next, WakeReason::kNotified);
  }
}

bool Environment::MutexHeldByCurrent(ObjectId mutex) const {
  auto it = mutexes_.find(mutex);
  CHECK(it != mutexes_.end());
  return it->second.locked && it->second.owner == CurrentFiberId();
}

ObjectId Environment::CreateCondVar(const std::string& name) {
  return RegisterObject(ObjectKind::kCondVar, name, CurrentNode());
}

void Environment::CondWait(ObjectId cond, ObjectId mutex) {
  CHECK(MutexHeldByCurrent(mutex)) << "CondWait without holding the mutex";
  Emit(EventType::kCondWait, cond, mutex, 0, 0);
  // Unlock and enqueue are not separated by any scheduling point, so the
  // classic lost-wakeup window does not exist here.
  MutexUnlock(mutex);
  BlockCurrent(cond, -1);
  MutexLock(mutex);
}

void Environment::CondSignal(ObjectId cond) {
  Emit(EventType::kCondSignal, cond, 0, 0, 0);
  auto wl = wait_lists_.find(cond);
  if (wl != wait_lists_.end() && !wl->second.empty()) {
    const FiberId next = wl->second.front();
    wl->second.pop_front();
    WakeFiber(next, WakeReason::kNotified);
  }
}

void Environment::CondBroadcast(ObjectId cond) {
  Emit(EventType::kCondBroadcast, cond, 0, 0, 0);
  auto wl = wait_lists_.find(cond);
  if (wl == wait_lists_.end()) {
    return;
  }
  while (!wl->second.empty()) {
    const FiberId next = wl->second.front();
    wl->second.pop_front();
    WakeFiber(next, WakeReason::kNotified);
  }
}

ObjectId Environment::CreateSemaphore(const std::string& name, uint64_t initial) {
  const ObjectId id = RegisterObject(ObjectKind::kSemaphore, name, CurrentNode());
  semaphores_[id].count = initial;
  return id;
}

void Environment::SemAcquire(ObjectId sem) {
  MaybePreempt();
  auto it = semaphores_.find(sem);
  CHECK(it != semaphores_.end());
  while (it->second.count == 0) {
    BlockCurrent(sem, -1);
  }
  --it->second.count;
  Emit(EventType::kSemAcquire, sem, it->second.count, 0, 0);
}

void Environment::SemRelease(ObjectId sem) {
  auto it = semaphores_.find(sem);
  CHECK(it != semaphores_.end());
  ++it->second.count;
  if (!shutting_down_) {
    Emit(EventType::kSemRelease, sem, it->second.count, 0, 0);
  }
  auto wl = wait_lists_.find(sem);
  if (wl != wait_lists_.end() && !wl->second.empty()) {
    const FiberId next = wl->second.front();
    wl->second.pop_front();
    WakeFiber(next, WakeReason::kNotified);
  }
}

ObjectId Environment::CreateWaitQueue(const std::string& name) {
  return RegisterObject(ObjectKind::kWaitQueue, name, CurrentNode());
}

WakeReason Environment::WaitOn(ObjectId queue, SimDuration timeout) {
  return BlockCurrent(queue, timeout);
}

void Environment::NotifyOne(ObjectId queue) {
  auto wl = wait_lists_.find(queue);
  if (wl == wait_lists_.end() || wl->second.empty()) {
    return;
  }
  const FiberId next = wl->second.front();
  wl->second.pop_front();
  WakeFiber(next, WakeReason::kNotified);
}

void Environment::NotifyAll(ObjectId queue) {
  auto wl = wait_lists_.find(queue);
  if (wl == wait_lists_.end()) {
    return;
  }
  while (!wl->second.empty()) {
    const FiberId next = wl->second.front();
    wl->second.pop_front();
    WakeFiber(next, WakeReason::kNotified);
  }
}

// ------------------------------------------------------ instrumented cells

ObjectId Environment::CreateCell(const std::string& name, uint64_t initial) {
  const ObjectId id = RegisterObject(ObjectKind::kCell, name, CurrentNode());
  cells_[id].value = initial;
  return id;
}

uint64_t Environment::CellRead(ObjectId cell) {
  MaybePreempt();
  auto it = cells_.find(cell);
  CHECK(it != cells_.end()) << "unknown cell " << cell;
  uint64_t value = it->second.value;
  if (director_->OverrideSharedRead(*this, cell, &value)) {
    // Value determinism: the director dictates the value observed; keep the
    // cell consistent with the observation.
    it->second.value = value;
  }
  Emit(EventType::kSharedRead, cell, value, 0, 8);
  return value;
}

void Environment::CellWrite(ObjectId cell, uint64_t value) {
  MaybePreempt();
  auto it = cells_.find(cell);
  CHECK(it != cells_.end()) << "unknown cell " << cell;
  it->second.value = value;
  Emit(EventType::kSharedWrite, cell, value, 0, 8);
}

uint64_t Environment::CellRmw(ObjectId cell, const std::function<uint64_t(uint64_t)>& fn) {
  MaybePreempt();
  auto it = cells_.find(cell);
  CHECK(it != cells_.end()) << "unknown cell " << cell;
  const uint64_t old_value = it->second.value;
  it->second.value = fn(old_value);
  Emit(EventType::kSharedRmw, cell, it->second.value, old_value, 8);
  return old_value;
}

uint64_t Environment::CellPeek(ObjectId cell) const {
  auto it = cells_.find(cell);
  CHECK(it != cells_.end()) << "unknown cell " << cell;
  return it->second.value;
}

// ------------------------------------------------------- library plumbing

ObjectId Environment::RegisterObject(ObjectKind kind, const std::string& name, NodeId node) {
  ObjectInfo info;
  info.id = static_cast<ObjectId>(objects_.size());
  info.kind = kind;
  info.name = name;
  info.node = node;
  objects_.push_back(std::move(info));
  return objects_.back().id;
}

const ObjectInfo& Environment::object_info(ObjectId id) const {
  CHECK_LT(id, objects_.size());
  return objects_[id];
}

void Environment::EmitLibraryEvent(EventType type, ObjectId obj, uint64_t value,
                                   uint64_t aux, uint32_t bytes, bool preempt) {
  if (preempt) {
    MaybePreempt();
  }
  Emit(type, obj, value, aux, bytes);
}

void Environment::ScheduleCallbackAt(SimTime when, std::function<void()> callback) {
  Timer timer;
  timer.when = std::max(when, now_);
  timer.is_callback = true;
  timer.callback = std::move(callback);
  PushTimer(std::move(timer));
}

NodeId Environment::AddNode(const std::string& name) {
  node_names_.push_back(name);
  node_alive_.push_back(true);
  return static_cast<NodeId>(node_names_.size() - 1);
}

const std::string& Environment::node_name(NodeId node) const {
  CHECK_LT(node, node_names_.size());
  return node_names_[node];
}

bool Environment::NodeAlive(NodeId node) const {
  CHECK_LT(node, node_alive_.size());
  return node_alive_[node];
}

void Environment::CrashNode(NodeId node) {
  CHECK_LT(node, node_alive_.size());
  if (!node_alive_[node]) {
    return;
  }
  node_alive_[node] = false;
  Emit(EventType::kNodeCrash, node, 0, 0, 0);
  for (const auto& listener : crash_listeners_) {
    listener(node);
  }
  for (const auto& owned : fibers_) {
    if (owned->node() == node && owned.get() != current_) {
      KillFiber(owned->id());
    }
  }
}

void Environment::AddNodeCrashListener(std::function<void(NodeId)> listener) {
  crash_listeners_.push_back(std::move(listener));
}

void Environment::ChargeRecordingOverhead(SimDuration nanos, uint64_t bytes) {
  overhead_nanos_ += nanos;
  recorded_bytes_ += bytes;
}

// ---------------------------------------------------------------- internals

void Environment::MaybePreempt() {
  if (in_scheduler_context_ || shutting_down_) {
    return;
  }
  if (stop_requested_) {
    // A run bound tripped (event/time limit, failure stop) while this fiber
    // is running. It may never block on its own (e.g. a runaway loop), so
    // unwind it here to hand control back to the scheduler.
    current_->request_kill();
    throw FiberKilled{};
  }
  const uint64_t decision = decision_seq_++;
  if (director_->ShouldPreempt(*this, current_->id(), decision)) {
    last_switch_cause_ = SwitchCause::kPreempt;
    SwitchOut(Fiber::State::kRunnable);
  }
}

void Environment::AdvanceClock(SimDuration cost) {
  now_ += static_cast<SimTime>(cost);
  cpu_nanos_ += cost;
  if (options_.max_virtual_time != 0 && now_ > options_.max_virtual_time) {
    outcome_.stats.hit_time_limit = true;
    stop_requested_ = true;
  }
}

void Environment::Emit(EventType type, ObjectId obj, uint64_t value, uint64_t aux,
                       uint32_t bytes) {
  if (shutting_down_) {
    return;
  }
  Event event;
  event.seq = next_event_seq_++;
  AdvanceClock(options_.base_op_cost);
  event.time = now_;
  if (current_ != nullptr && !in_scheduler_context_) {
    event.fiber = current_->id();
    event.node = current_->node();
    event.region = current_->current_region();
  }
  event.type = type;
  event.obj = obj;
  event.value = value;
  event.aux = aux;
  event.bytes = bytes;

  fingerprint_sink_.OnEvent(event);
  for (TraceSink* sink : sinks_) {
    sink->OnEvent(event);
  }
  director_->OnEvent(*this, event);

  if (options_.max_events != 0 && next_event_seq_ >= options_.max_events) {
    outcome_.stats.hit_event_limit = true;
    stop_requested_ = true;
  }
}

void Environment::EmitSwitch(FiberId prev, FiberId next) {
  Event event;
  event.seq = next_event_seq_++;
  event.time = now_;
  event.fiber = kInvalidFiber;
  event.node = 0;
  event.type = EventType::kContextSwitch;
  event.obj = prev == kInvalidFiber ? kInvalidObject : prev;
  event.value = next;
  event.aux = PackSwitchAux(decision_seq_, last_switch_cause_);
  fingerprint_sink_.OnEvent(event);
  for (TraceSink* sink : sinks_) {
    sink->OnEvent(event);
  }
  director_->OnEvent(*this, event);
}

void Environment::ArmFaultPlan() {
  for (const FaultSpec& fault : fault_plan_.faults()) {
    switch (fault.kind) {
      case FaultKind::kCrashNode: {
        const NodeId node = fault.node;
        ScheduleCallbackAt(fault.at_time, [this, node] {
          Emit(EventType::kFaultInject, static_cast<ObjectId>(FaultKind::kCrashNode),
               node, 0, 0);
          CrashNode(node);
        });
        break;
      }
      case FaultKind::kOomOnAlloc:
        armed_oom_.emplace_back(fault.node, fault.at_time);
        break;
      case FaultKind::kCongestion:
        // Consumed by the network layer via fault_plan().
        break;
    }
  }
}

// ------------------------------------------------------- default director

bool ExecutionDirector::ShouldPreempt(Environment& env, FiberId current,
                                      uint64_t decision_seq) {
  (void)env;
  (void)current;
  (void)decision_seq;
  return false;
}

FiberId ExecutionDirector::PickNextFiber(Environment& env,
                                         const std::vector<FiberId>& runnable,
                                         uint64_t switch_seq) {
  (void)env;
  (void)switch_seq;
  return runnable.front();
}

bool ExecutionDirector::OverrideRngDraw(Environment& env, RngPurpose purpose,
                                        uint64_t* value) {
  (void)env;
  (void)purpose;
  (void)value;
  return false;
}

bool ExecutionDirector::OverrideInput(Environment& env, ObjectId source, uint64_t* value) {
  (void)env;
  (void)source;
  (void)value;
  return false;
}

bool ExecutionDirector::OverrideSharedRead(Environment& env, ObjectId cell,
                                           uint64_t* value) {
  (void)env;
  (void)cell;
  (void)value;
  return false;
}

void ExecutionDirector::OnEvent(Environment& env, const Event& event) {
  (void)env;
  (void)event;
}

bool DefaultDirector::ShouldPreempt(Environment& env, FiberId current,
                                    uint64_t decision_seq) {
  (void)current;
  (void)decision_seq;
  if (options_.preempt_probability <= 0.0) {
    return false;
  }
  return env.scheduler_rng().NextBernoulli(options_.preempt_probability);
}

FiberId DefaultDirector::PickNextFiber(Environment& env,
                                       const std::vector<FiberId>& runnable,
                                       uint64_t switch_seq) {
  (void)switch_seq;
  CHECK(!runnable.empty());
  switch (options_.policy) {
    case SchedulingOptions::Policy::kRandom:
      return runnable[env.scheduler_rng().NextIndex(runnable.size())];
    case SchedulingOptions::Policy::kRoundRobin: {
      const FiberId pick = runnable[rr_cursor_ % runnable.size()];
      ++rr_cursor_;
      return pick;
    }
  }
  return runnable.front();
}

}  // namespace ddr
