// SharedVar<T>: typed wrapper over an instrumented shared-memory cell.
//
// Every Load/Store is an event, a scheduling point, and a race-detection
// observation — the substrate's analog of a memory access interposed by a
// replay tool. T must be losslessly representable in 64 bits.

#ifndef SRC_SIM_SHARED_VAR_H_
#define SRC_SIM_SHARED_VAR_H_

#include <string>
#include <type_traits>

#include "src/sim/environment.h"

namespace ddr {

template <typename T>
class SharedVar {
  static_assert(std::is_integral_v<T> || std::is_enum_v<T>,
                "SharedVar requires an integral or enum type");

 public:
  SharedVar(Environment& env, const std::string& name, T initial)
      : env_(env),
        id_(env.CreateCell(name, static_cast<uint64_t>(initial))) {}

  T Load() { return static_cast<T>(env_.CellRead(id_)); }

  void Store(T value) { env_.CellWrite(id_, static_cast<uint64_t>(value)); }

  // Atomic fetch-add; returns the previous value.
  T FetchAdd(T delta) {
    return static_cast<T>(env_.CellRmw(id_, [delta](uint64_t v) {
      return v + static_cast<uint64_t>(delta);
    }));
  }

  // Atomic compare-and-swap; returns true on success.
  bool CompareExchange(T expected, T desired) {
    bool swapped = false;
    env_.CellRmw(id_, [&](uint64_t v) -> uint64_t {
      if (v == static_cast<uint64_t>(expected)) {
        swapped = true;
        return static_cast<uint64_t>(desired);
      }
      return v;
    });
    return swapped;
  }

  // Uninstrumented read: no event, no scheduling point. For assertions and
  // end-of-run snapshots only; never for program logic under test.
  T Peek() const { return static_cast<T>(env_.CellPeek(id_)); }

  ObjectId id() const { return id_; }

 private:
  Environment& env_;
  ObjectId id_;
};

}  // namespace ddr

#endif  // SRC_SIM_SHARED_VAR_H_
