// Regenerates §2's over-relaxation pitfalls as concrete measurements.
//
//   Pitfall 1 (failure not reproduced): the sum bug (inputs 2,2 -> output
//   5). Output-deterministic inference solves x + y == 5 and finds (0,5)
//   first — a correct execution. Fidelity 0.
//
//   Pitfall 2 (wrong root cause): the message-drop server. Failure-
//   deterministic inference reproduces the drop-rate failure via a
//   hypothesized congestion window instead of the ring-buffer race.
//   Fidelity 1/2 — and the developer is deceived into blaming the network.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/apps/scenarios.h"
#include "src/util/logging.h"

namespace ddr {
namespace {

void RunPitfall1() {
  PrintBanner("Pitfall 1: sum bug (2+2=5) - failure not reproduced under output determinism");
  ExperimentHarness harness(MakeSumScenario());
  CHECK(harness.Prepare().ok());
  std::printf("production failure: %s\n",
              harness.production_outcome().primary_failure()->message.c_str());

  TablePrinter table({"model", "overhead", "log bytes", "DF", "DE", "DU",
                      "failure?", "diagnosed"});
  table.AddRow(RowCells(harness.RunModel(DeterminismModel::kOutputOnly)));
  table.AddRow(RowCells(harness.RunModel(DeterminismModel::kOutputHeavy)));
  table.AddRow(RowCells(harness.RunModel(DeterminismModel::kValue)));
  table.Print(std::cout);

  ExperimentRow output_row = harness.RunModel(DeterminismModel::kOutputOnly);
  std::printf(
      "output-only inference solved the output constraint in %llu attempts;\n"
      "the synthesized inputs sum to 5 without tripping the corrupted table\n"
      "entry, so the replayed execution does not fail at all (DF = %.2f).\n",
      static_cast<unsigned long long>(output_row.inference.attempts),
      output_row.fidelity);
}

void RunPitfall2() {
  PrintBanner("Pitfall 2: msgdrop server - wrong root cause under failure determinism");
  ExperimentHarness harness(MakeMsgDropScenario());
  CHECK(harness.Prepare().ok());
  std::printf("production failure: %s\n",
              harness.production_outcome().primary_failure()->message.c_str());

  TablePrinter table({"model", "overhead", "log bytes", "DF", "DE", "DU",
                      "failure?", "diagnosed"});
  table.AddRow(RowCells(harness.RunModel(DeterminismModel::kFailure)));
  table.AddRow(RowCells(harness.RunModel(DeterminismModel::kDebugRcse)));
  table.AddRow(RowCells(harness.RunModel(DeterminismModel::kValue)));
  table.Print(std::cout);

  ExperimentRow failure_row = harness.RunModel(DeterminismModel::kFailure);
  std::printf(
      "failure determinism diagnosed '%s' (actual root cause: buffer-race),\n"
      "DF = %.2f — network congestion is beyond the developer's control, so\n"
      "the true race would remain undiscovered.\n",
      failure_row.diagnosed_cause.value_or("(none)").c_str(), failure_row.fidelity);
}

}  // namespace
}  // namespace ddr

int main() {
  ddr::RunPitfall1();
  ddr::RunPitfall2();
  return 0;
}
