// Regenerates Figure 1: the determinism-relaxation trend — runtime overhead
// vs. debugging utility across determinism models, averaged over the bug
// suite (sum, overflow, msgdrop, hypertable).
//
// The paper's qualitative claim: chronological relaxation (perfect -> value
// -> output -> failure) monotonically lowers runtime overhead while eroding
// debugging utility into unpredictability; debug determinism (RCSE) breaks
// off the curve with near-relaxed overhead and near-perfect utility.

#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/scenarios.h"
#include "src/util/histogram.h"
#include "src/util/logging.h"

namespace ddr {
namespace {

void RunFig1() {
  PrintBanner("Figure 1: relaxation trend - runtime overhead vs. debugging utility");

  std::vector<BugScenario> scenarios;
  scenarios.push_back(MakeSumScenario());
  scenarios.push_back(MakeOverflowScenario());
  scenarios.push_back(MakeMsgDropScenario());
  scenarios.push_back(MakeHypertableScenario());
  // Keep inference bounded: Fig. 1 needs the trend, not deep searches.
  for (BugScenario& scenario : scenarios) {
    scenario.inference_budget.max_wall_seconds = 6.0;
    scenario.inference_budget.max_attempts = 600;
  }

  std::map<DeterminismModel, SummaryStats> overhead;
  std::map<DeterminismModel, SummaryStats> fidelity;
  std::map<DeterminismModel, SummaryStats> utility;

  TablePrinter per_bug({"bug", "model", "overhead", "bytes", "DF", "DE", "DU",
                        "failure?", "diagnosed"});
  BenchJsonWriter json("fig1_relaxation_tradeoff");
  for (BugScenario& scenario : scenarios) {
    ExperimentHarness harness(scenario);
    const Status status = harness.Prepare();
    CHECK(status.ok()) << scenario.name << ": " << status;
    for (DeterminismModel model : AllDeterminismModels()) {
      ExperimentRow row = harness.RunModel(model);
      EmitExperimentRowJson(json, scenario.name, row);
      overhead[model].Add(row.overhead_multiplier);
      fidelity[model].Add(row.fidelity);
      utility[model].Add(row.utility);
      std::vector<std::string> cells = RowCells(row);
      cells.insert(cells.begin(), scenario.name);
      per_bug.AddRow(cells);
    }
  }
  per_bug.Print(std::cout);

  PrintBanner("Figure 1 series (mean over the bug suite)");
  TablePrinter series({"model (system)", "runtime overhead", "debugging fidelity",
                       "debugging utility"});
  for (DeterminismModel model : AllDeterminismModels()) {
    series.AddRow({std::string(DeterminismModelName(model)) + " (" +
                       std::string(DeterminismModelSystem(model)) + ")",
                   FormatDouble(overhead[model].mean()) + "x",
                   FormatDouble(fidelity[model].mean()),
                   FormatDouble(utility[model].mean(), 3)});
  }
  series.Print(std::cout);

  std::printf(
      "\nShape check: overhead decreases monotonically along the relaxation\n"
      "course (perfect -> value -> output -> failure) while fidelity/utility\n"
      "degrade and become workload-dependent ('unpredictable debugging\n"
      "utility'); debug determinism (RCSE) sits off the curve: overhead close\n"
      "to the ultra-relaxed models at fidelity ~1.\n");
}

}  // namespace
}  // namespace ddr

int main() {
  ddr::RunFig1();
  return 0;
}
