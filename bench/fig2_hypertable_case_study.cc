// Regenerates Figure 2: recording overhead vs. debugging fidelity for the
// Hypertable data-corruption bug (issue 63), comparing value determinism
// (Friday-class), failure determinism (ESD-class), and RCSE based on
// control-plane code selection.
//
// Paper reference points: value determinism ~3.5x overhead / fidelity 1;
// failure determinism ~1x / fidelity 1/3; RCSE slightly above the
// ultra-relaxed models / fidelity 1 ("escaping the relaxation trend").

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/apps/scenarios.h"
#include "src/util/logging.h"

namespace ddr {
namespace {

void RunFig2() {
  PrintBanner("Figure 2: Hypertable bug - runtime overhead vs. debugging fidelity");

  ExperimentHarness harness(MakeHypertableScenario());
  const Status status = harness.Prepare();
  CHECK(status.ok()) << status;
  std::printf("production run: sched seed %llu, %llu events, failure: %s\n",
              static_cast<unsigned long long>(harness.production_sched_seed()),
              static_cast<unsigned long long>(
                  harness.production_outcome().stats.events),
              harness.production_outcome().primary_failure()->message.c_str());

  struct Point {
    DeterminismModel model;
    const char* paper_overhead;
    const char* paper_fidelity;
  };
  const Point points[] = {
      {DeterminismModel::kValue, "~3.5x", "1"},
      {DeterminismModel::kFailure, "~1.0x", "1/3"},
      {DeterminismModel::kDebugRcse, "slightly >1x", "1"},
  };

  TablePrinter table({"model (system)", "overhead", "paper overhead", "fidelity",
                      "paper fidelity", "log bytes", "diagnosed root cause"});
  for (const Point& point : points) {
    ExperimentRow row = harness.RunModel(point.model);
    table.AddRow({std::string(DeterminismModelName(point.model)) + " (" +
                      std::string(DeterminismModelSystem(point.model)) + ")",
                  FormatDouble(row.overhead_multiplier) + "x", point.paper_overhead,
                  FormatDouble(row.fidelity), point.paper_fidelity,
                  StrPrintf("%llu", static_cast<unsigned long long>(row.log_bytes)),
                  row.diagnosed_cause.value_or("-")});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check: RCSE achieves fidelity 1 at overhead well below value\n"
      "determinism; failure determinism is free to record but lands on a\n"
      "different root cause (fidelity 1/n with n=3 candidate causes).\n");
}

}  // namespace
}  // namespace ddr

int main() {
  ddr::RunFig2();
  return 0;
}
