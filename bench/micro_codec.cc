// Microbenchmark for the decode hot path introduced by the batched
// columnar codec: scalar vs batched chunk decode throughput (Mev/s),
// bulk vs per-value columnar encode, and bytewise vs slicing-by-8
// CRC-32 (GB/s). Plain-main (no google-benchmark) so it runs
// everywhere; emits BENCH_micro_codec.json lines for cross-PR tracking.
//
// Every timed pair is also an equivalence check: the batched decode must
// reproduce the scalar decode's events exactly, the bulk encode the
// per-value encode's bytes exactly, and the sliced CRC the bytewise
// CRC's value exactly — a throughput win that changed a bit would be a
// regression, not a win.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/event.h"
#include "src/trace/chunk_codec.h"
#include "src/util/crc32.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace ddr {
namespace {

constexpr uint64_t kEventsPerChunk = 512;
constexpr uint64_t kChunks = 256;
constexpr int kDecodeRepeats = 20;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// Same realistically-shaped synthetic events as the corpus benches:
// small monotone deltas, a few distinct ids, occasional larger values.
std::vector<Event> MakeEvents(uint64_t count, uint64_t seed) {
  std::vector<Event> events;
  events.reserve(count);
  Rng rng(seed);
  SimTime now = 0;
  for (uint64_t seq = 0; seq < count; ++seq) {
    Event event;
    event.seq = seq;
    now += 20 + rng.NextIndex(80);
    event.time = now;
    event.fiber = static_cast<FiberId>(seq % 6);
    event.node = static_cast<NodeId>(seq % 3);
    event.obj = 10 + seq % 12;
    event.region = static_cast<RegionId>(seq % 4);
    event.type = seq % 2 == 0 ? EventType::kSharedRead : EventType::kRngDraw;
    event.value = rng.NextIndex(1u << 20);
    event.aux = seq % 16 == 0 ? rng.NextIndex(1u << 30) : 0;
    event.bytes = 8;
    events.push_back(event);
  }
  return events;
}

void RunDecodeBench(BenchJsonWriter& json) {
  PrintBanner("columnar chunk decode: scalar vs batched");
  std::vector<std::vector<Event>> chunks;
  std::vector<std::vector<uint8_t>> payloads;
  for (uint64_t c = 0; c < kChunks; ++c) {
    chunks.push_back(MakeEvents(kEventsPerChunk, c + 1));
    payloads.push_back(EncodeEventChunkPayload(
        chunks.back().data(), kEventsPerChunk, c * kEventsPerChunk,
        TraceFilter::kVarintDelta));
  }
  const uint64_t total_events = kChunks * kEventsPerChunk * kDecodeRepeats;

  const auto run = [&](ColumnarDecodePath path) -> double {
    const auto start = std::chrono::steady_clock::now();
    uint64_t sum = 0;
    for (int r = 0; r < kDecodeRepeats; ++r) {
      for (uint64_t c = 0; c < kChunks; ++c) {
        auto events = DecodeEventChunkPayloadWithPath(
            payloads[c], TraceFilter::kVarintDelta, c * kEventsPerChunk,
            kEventsPerChunk, path);
        CHECK(events.ok()) << events.status();
        sum += events->back().seq;
      }
    }
    CHECK_GT(sum, 0u);
    return Seconds(start);
  };

  // Equivalence before speed: both paths must produce identical events.
  for (uint64_t c = 0; c < kChunks; ++c) {
    auto scalar = DecodeEventChunkPayloadWithPath(
        payloads[c], TraceFilter::kVarintDelta, c * kEventsPerChunk,
        kEventsPerChunk, ColumnarDecodePath::kScalar);
    auto batched = DecodeEventChunkPayloadWithPath(
        payloads[c], TraceFilter::kVarintDelta, c * kEventsPerChunk,
        kEventsPerChunk, ColumnarDecodePath::kBatched);
    CHECK(scalar.ok() && batched.ok());
    for (uint64_t i = 0; i < kEventsPerChunk; ++i) {
      CHECK_EQ((*scalar)[i].seq, (*batched)[i].seq);
      CHECK_EQ((*scalar)[i].value, (*batched)[i].value);
    }
  }

  const double scalar_seconds = run(ColumnarDecodePath::kScalar);
  const double batched_seconds = run(ColumnarDecodePath::kBatched);
  const double scalar_meps = total_events / scalar_seconds / 1e6;
  const double batched_meps = total_events / batched_seconds / 1e6;
  std::printf("decode scalar  : %7.2f Mev/s\n", scalar_meps);
  std::printf("decode batched : %7.2f Mev/s  (%.2fx)\n", batched_meps,
              scalar_seconds / batched_seconds);

  JsonLine line = json.Line();
  line.Str("section", "codec")
      .Str("op", "decode")
      .Int("events", total_events)
      .Num("scalar_mevents_per_sec", scalar_meps)
      .Num("batched_mevents_per_sec", batched_meps)
      .Num("batched_vs_scalar_speedup", scalar_seconds / batched_seconds);
  json.Write(line);
}

void RunEncodeBench(BenchJsonWriter& json) {
  PrintBanner("columnar chunk encode");
  const std::vector<Event> events =
      MakeEvents(kEventsPerChunk * kChunks, 1234);
  const uint64_t total_events = events.size() * kDecodeRepeats;

  const auto start = std::chrono::steady_clock::now();
  uint64_t bytes = 0;
  for (int r = 0; r < kDecodeRepeats; ++r) {
    for (uint64_t c = 0; c < kChunks; ++c) {
      bytes += EncodeEventChunkPayload(events.data() + c * kEventsPerChunk,
                                       kEventsPerChunk, c * kEventsPerChunk,
                                       TraceFilter::kVarintDelta)
                   .size();
    }
  }
  const double seconds = Seconds(start);
  const double meps = total_events / seconds / 1e6;
  std::printf("encode bulk    : %7.2f Mev/s (%llu payload bytes/pass)\n", meps,
              static_cast<unsigned long long>(bytes / kDecodeRepeats));

  JsonLine line = json.Line();
  line.Str("section", "codec")
      .Str("op", "encode")
      .Int("events", total_events)
      .Int("payload_bytes", bytes / kDecodeRepeats)
      .Num("mevents_per_sec", meps);
  json.Write(line);
}

void RunCrcBench(BenchJsonWriter& json) {
  PrintBanner("crc32: bytewise vs slicing-by-8");
  constexpr size_t kBufBytes = 8 << 20;
  constexpr int kRepeats = 16;
  std::vector<uint8_t> buffer(kBufBytes);
  Rng rng(99);
  for (uint8_t& byte : buffer) {
    byte = static_cast<uint8_t>(rng.NextIndex(256));
  }

  // Equivalence first (also warms the tables + the buffer).
  CHECK_EQ(Crc32Finish(Crc32Update(kCrc32Init, buffer.data(), buffer.size())),
           Crc32Finish(
               Crc32UpdateBytewise(kCrc32Init, buffer.data(), buffer.size())));

  const auto time_crc = [&](auto&& update) -> double {
    const auto start = std::chrono::steady_clock::now();
    uint32_t state = kCrc32Init;
    for (int r = 0; r < kRepeats; ++r) {
      state = update(state, buffer.data(), buffer.size());
    }
    CHECK_NE(state, 0u);
    return Seconds(start);
  };

  const double bytewise_seconds = time_crc(Crc32UpdateBytewise);
  const double sliced_seconds = time_crc(Crc32Update);
  const double total_gb =
      static_cast<double>(kBufBytes) * kRepeats / (1024.0 * 1024.0 * 1024.0);
  std::printf("crc32 bytewise : %6.2f GB/s\n", total_gb / bytewise_seconds);
  std::printf("crc32 sliced   : %6.2f GB/s  (%.2fx)\n",
              total_gb / sliced_seconds, bytewise_seconds / sliced_seconds);

  JsonLine line = json.Line();
  line.Str("section", "codec")
      .Str("op", "crc32")
      .Int("bytes_per_pass", kBufBytes)
      .Num("bytewise_gb_per_sec", total_gb / bytewise_seconds)
      .Num("sliced_gb_per_sec", total_gb / sliced_seconds)
      .Num("sliced_vs_bytewise_speedup", bytewise_seconds / sliced_seconds);
  json.Write(line);
}

void RunAll() {
  BenchJsonWriter json("micro_codec");
  RunDecodeBench(json);
  RunEncodeBench(json);
  RunCrcBench(json);
}

}  // namespace
}  // namespace ddr

int main() {
  ddr::RunAll();
  return 0;
}
