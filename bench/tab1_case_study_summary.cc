// Regenerates the §4 case-study numbers as a full table: every determinism
// model on the Hypertable bug, with recording overhead, log volume,
// debugging fidelity / efficiency / utility, and the diagnosed root cause.
//
// Paper reference points (§4): value determinism records all inputs and
// thread interleavings (~3.5x); RCSE records just control-plane channel
// data and the thread schedule; failure determinism records only the
// failure state and has fidelity 1/3 (three candidate root causes).

#include <iostream>

#include "bench/bench_util.h"
#include "src/apps/scenarios.h"
#include "src/util/logging.h"

namespace ddr {
namespace {

void RunTab1() {
  PrintBanner("Table 1 (from §4 prose): Hypertable case-study summary, all models");

  ExperimentHarness harness(MakeHypertableScenario());
  const Status status = harness.Prepare();
  CHECK(status.ok()) << status;

  TablePrinter table({"model", "overhead", "log bytes", "DF", "DE", "DU",
                      "failure?", "diagnosed"});
  BenchJsonWriter json("tab1_case_study_summary");
  for (DeterminismModel model : AllDeterminismModels()) {
    const ExperimentRow row = harness.RunModel(model);
    EmitExperimentRowJson(json, harness.scenario().name, row);
    table.AddRow(RowCells(row));
  }
  table.Print(std::cout);

  std::printf(
      "\nn = %zu candidate root causes: migration-race (actual), slave-crash,\n"
      "client-oom. DF per §3.2: 1 if failure+actual cause reproduce, 1/n if\n"
      "failure reproduces via another cause, 0 if the failure is lost.\n",
      harness.scenario().catalog.size());
}

}  // namespace
}  // namespace ddr

int main() {
  ddr::RunTab1();
  return 0;
}
