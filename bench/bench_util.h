// Shared helpers for the figure/table regeneration harnesses.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "src/core/experiment.h"
#include "src/util/string_util.h"
#include "src/util/table_printer.h"

namespace ddr {

inline std::string FormatDouble(double value, int decimals = 2) {
  return StrPrintf("%.*f", decimals, value);
}

inline std::vector<std::string> RowCells(const ExperimentRow& row) {
  return {
      row.model_name,
      FormatDouble(row.overhead_multiplier) + "x",
      StrPrintf("%llu", static_cast<unsigned long long>(row.log_bytes)),
      FormatDouble(row.fidelity),
      FormatDouble(row.efficiency, 3),
      FormatDouble(row.utility, 3),
      row.failure_reproduced ? "yes" : "no",
      row.diagnosed_cause.value_or("-"),
  };
}

inline void PrintBanner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace ddr

#endif  // BENCH_BENCH_UTIL_H_
