// Shared helpers for the figure/table regeneration harnesses.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/experiment.h"
#include "src/util/string_util.h"
#include "src/util/table_printer.h"

namespace ddr {

inline std::string FormatDouble(double value, int decimals = 2) {
  return StrPrintf("%.*f", decimals, value);
}

inline std::vector<std::string> RowCells(const ExperimentRow& row) {
  return {
      row.model_name,
      FormatDouble(row.overhead_multiplier) + "x",
      StrPrintf("%llu", static_cast<unsigned long long>(row.log_bytes)),
      FormatDouble(row.fidelity),
      FormatDouble(row.efficiency, 3),
      FormatDouble(row.utility, 3),
      row.failure_reproduced ? "yes" : "no",
      row.diagnosed_cause.value_or("-"),
  };
}

inline void PrintBanner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// ---------------------------------------------------------------------------
// Machine-readable benchmark output: one JSON object per line, so perf
// trajectories can be diffed across PRs. Each bench appends to
// BENCH_<name>.json in the working directory (override the path with
// DDR_BENCH_JSON; set DDR_BENCH_JSON=off to disable).
// ---------------------------------------------------------------------------

// Builds one JSON line with insertion-ordered fields. String escaping
// comes from src/util/string_util.h (JsonEscape).
class JsonLine {
 public:
  JsonLine& Str(const std::string& key, const std::string& value) {
    std::string quoted;
    quoted.reserve(value.size() + 2);
    quoted += '"';
    quoted += JsonEscape(value);
    quoted += '"';
    return Raw(key, quoted);
  }
  JsonLine& Num(const std::string& key, double value) {
    return Raw(key, StrPrintf("%.6g", value));
  }
  JsonLine& Int(const std::string& key, uint64_t value) {
    return Raw(key, StrPrintf("%llu", static_cast<unsigned long long>(value)));
  }
  JsonLine& Bool(const std::string& key, bool value) {
    return Raw(key, value ? "true" : "false");
  }

  std::string Finish() const { return body_ + "}"; }

 private:
  JsonLine& Raw(const std::string& key, const std::string& value) {
    if (body_.size() > 1) {
      body_ += ',';
    }
    body_ += '"';
    body_ += JsonEscape(key);
    body_ += "\":";
    body_ += value;
    return *this;
  }
  std::string body_ = "{";
};

class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(const std::string& bench_name) : bench_(bench_name) {
    const char* override_path = std::getenv("DDR_BENCH_JSON");
    if (override_path != nullptr && std::string(override_path) == "off") {
      return;
    }
    path_ = override_path != nullptr ? override_path
                                     : "BENCH_" + bench_name + ".json";
  }

  bool enabled() const { return !path_.empty(); }

  // Starts a line pre-tagged with this writer's bench name.
  JsonLine Line() const {
    JsonLine line;
    line.Str("bench", bench_);
    return line;
  }

  void Write(const JsonLine& line) {
    if (!enabled()) {
      return;
    }
    std::FILE* file = std::fopen(path_.c_str(), "a");
    if (file == nullptr) {
      return;
    }
    std::fprintf(file, "%s\n", line.Finish().c_str());
    std::fclose(file);
  }

 private:
  std::string bench_;
  std::string path_;
};

// Standard JSON projection of an ExperimentRow (mirrors RowCells).
inline void EmitExperimentRowJson(BenchJsonWriter& writer,
                                  const std::string& scenario,
                                  const ExperimentRow& row) {
  JsonLine line = writer.Line();
  line.Str("scenario", scenario)
      .Str("model", row.model_name)
      .Num("overhead", row.overhead_multiplier)
      .Int("log_bytes", row.log_bytes)
      .Int("recorded_events", row.recorded_events)
      .Num("fidelity", row.fidelity)
      .Num("efficiency", row.efficiency)
      .Num("utility", row.utility)
      .Bool("failure_reproduced", row.failure_reproduced)
      .Str("diagnosed", row.diagnosed_cause.value_or(""));
  writer.Write(line);
}

}  // namespace ddr

#endif  // BENCH_BENCH_UTIL_H_
