// Ablation over the RCSE variants of §3.1 on the Hypertable and msgdrop
// bugs: code-based selection, data-based selection (triggers only), and
// combined code/data selection, plus the effect of disabling dial-down.
//
// Expected shape: code-based selection gives full fidelity on the Hypertable
// bug because the race lives in control-plane code (§4); data-based
// selection records less until a trigger fires; disabling dial-down
// increases log volume without improving fidelity.

#include <iostream>

#include "bench/bench_util.h"
#include "src/apps/scenarios.h"
#include "src/util/logging.h"

namespace ddr {
namespace {

struct Variant {
  const char* label;
  RcseMode mode;
  SimDuration dial_down_after;
};

void RunAblation(const char* title, BugScenario base) {
  PrintBanner(title);
  const Variant variants[] = {
      {"code-based", RcseMode::kCodeBased, 10 * kMillisecond},
      {"data-based (triggers)", RcseMode::kDataBased, 10 * kMillisecond},
      {"combined", RcseMode::kCombined, 10 * kMillisecond},
      {"combined, no dial-down", RcseMode::kCombined, 0},
  };
  TablePrinter table({"RCSE variant", "overhead", "log bytes", "DF", "DU",
                      "failure?", "diagnosed"});
  for (const Variant& variant : variants) {
    BugScenario scenario = base;
    scenario.rcse_mode = variant.mode;
    scenario.rcse_dial_down_after = variant.dial_down_after;
    ExperimentHarness harness(scenario);
    CHECK(harness.Prepare().ok());
    ExperimentRow row = harness.RunModel(DeterminismModel::kDebugRcse);
    table.AddRow({variant.label, FormatDouble(row.overhead_multiplier) + "x",
                  StrPrintf("%llu", static_cast<unsigned long long>(row.log_bytes)),
                  FormatDouble(row.fidelity), FormatDouble(row.utility, 3),
                  row.failure_reproduced ? "yes" : "no",
                  row.diagnosed_cause.value_or("-")});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace ddr

int main() {
  ddr::RunAblation("RCSE ablation: Hypertable data-loss race", ddr::MakeHypertableScenario());
  ddr::RunAblation("RCSE ablation: msgdrop buffer race", ddr::MakeMsgDropScenario());
  return 0;
}
