// Microbenchmark of the persistent trace store: serialize / deserialize
// throughput, on-disk bytes per event, compression ratio, and the I/O cost
// of checkpoint-indexed partial reads. Plain-main (no google-benchmark) so
// it runs everywhere; emits BENCH_micro_trace_store.json lines for
// cross-PR tracking.

#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/trace/block_compress.h"
#include "src/trace/trace_reader.h"
#include "src/trace/trace_store.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace ddr {
namespace {

constexpr char kTmpPath[] = "micro_trace_store.tmp.ddrt";

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// A synthetic but realistically-shaped recording: mixed event types over a
// few fibers/objects, the value distribution event codecs see in practice.
RecordedExecution MakeRecording(uint64_t num_events) {
  RecordedExecution recording;
  recording.model = "bench";
  Rng rng(1234);
  SimTime now = 0;
  for (uint64_t seq = 0; seq < num_events; ++seq) {
    Event event;
    event.seq = seq;
    now += 20 + rng.NextIndex(80);
    event.time = now;
    event.fiber = static_cast<FiberId>(seq % 6);
    event.node = static_cast<NodeId>(seq % 3);
    event.obj = 10 + seq % 12;
    event.region = static_cast<RegionId>(seq % 4);
    switch (seq % 5) {
      case 0:
        event.type = EventType::kSharedRead;
        event.value = rng.NextIndex(1 << 16);
        event.bytes = 8;
        break;
      case 1:
        event.type = EventType::kSharedWrite;
        event.value = rng.NextIndex(1 << 16);
        event.bytes = 8;
        break;
      case 2:
        event.type = EventType::kContextSwitch;
        event.value = (seq + 1) % 6;
        event.aux = PackSwitchAux(seq, SwitchCause::kPreempt);
        break;
      case 3:
        event.type = EventType::kRngDraw;
        event.value = rng.NextIndex(1u << 30);
        break;
      default:
        event.type = EventType::kInput;
        event.value = rng.NextIndex(1 << 12);
        event.bytes = 4;
        break;
    }
    recording.log.Append(event);
  }
  recording.recorded_events = num_events;
  recording.intercepted_events = num_events;
  return recording;
}

void RunBench(uint64_t num_events, int iterations, BenchJsonWriter& json) {
  const RecordedExecution recording = MakeRecording(num_events);
  TraceWriteOptions options;
  options.checkpoint_interval = 1024;

  // Serialize (in-memory image, no disk).
  const TraceWriter writer(options);
  std::vector<uint8_t> image;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iterations; ++i) {
    image = writer.Serialize(recording);
  }
  const double encode_seconds = Seconds(start) / iterations;

  // Compression ratio vs. the flat event-log encoding.
  const double raw_bytes = static_cast<double>(recording.log.Encode().size());
  const double file_bytes = static_cast<double>(image.size());

  // Save + full load through disk.
  CHECK(TraceStore::Save(kTmpPath, recording, options).ok());
  start = std::chrono::steady_clock::now();
  uint64_t decoded_events = 0;
  for (int i = 0; i < iterations; ++i) {
    auto loaded = TraceStore::Load(kTmpPath);
    CHECK(loaded.ok()) << loaded.status();
    decoded_events = loaded->log.size();
  }
  const double decode_seconds = Seconds(start) / iterations;
  CHECK_EQ(decoded_events, num_events);

  // Checkpoint-indexed partial read: decode 256 events from the middle and
  // count how much of the file was touched.
  auto reader_or = TraceReader::Open(kTmpPath);
  CHECK(reader_or.ok());
  const uint64_t open_bytes = reader_or->bytes_read();
  auto mid = reader_or->ReadEvents(num_events / 2, 256);
  CHECK(mid.ok());
  const double partial_fraction =
      static_cast<double>(reader_or->bytes_read()) / file_bytes;
  std::remove(kTmpPath);

  const double encode_meps = num_events / encode_seconds / 1e6;
  const double decode_meps = num_events / decode_seconds / 1e6;
  std::printf(
      "%9llu events: encode %7.2f Mev/s  decode %7.2f Mev/s  %5.2f B/event  "
      "ratio %.2fx  partial-read %4.1f%% of file (open cost %llu B)\n",
      static_cast<unsigned long long>(num_events), encode_meps, decode_meps,
      file_bytes / num_events, raw_bytes / file_bytes, partial_fraction * 100.0,
      static_cast<unsigned long long>(open_bytes));

  JsonLine line = json.Line();
  line.Int("events", num_events)
      .Num("encode_mevents_per_sec", encode_meps)
      .Num("decode_mevents_per_sec", decode_meps)
      .Num("bytes_per_event", file_bytes / num_events)
      .Num("compression_ratio", raw_bytes / file_bytes)
      .Num("partial_read_fraction", partial_fraction);
  json.Write(line);
}

void RunCodecBench(BenchJsonWriter& json) {
  // Block codec in isolation, on a chunk-sized encoded-event payload.
  const RecordedExecution recording = MakeRecording(4096);
  const std::vector<uint8_t> block = recording.log.Encode();
  constexpr int kIters = 50;

  auto start = std::chrono::steady_clock::now();
  std::vector<uint8_t> compressed;
  for (int i = 0; i < kIters; ++i) {
    compressed = CompressBlock(block);
  }
  const double compress_mbps =
      block.size() / (Seconds(start) / kIters) / 1e6;

  start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    auto out = DecompressBlock(compressed.data(), compressed.size(), block.size());
    CHECK(out.ok());
  }
  const double decompress_mbps =
      block.size() / (Seconds(start) / kIters) / 1e6;

  std::printf(
      "ddrz codec: compress %6.1f MB/s  decompress %6.1f MB/s  ratio %.2fx\n",
      compress_mbps, decompress_mbps,
      static_cast<double>(block.size()) / compressed.size());

  JsonLine line = json.Line();
  line.Str("codec", "ddrz")
      .Num("compress_mb_per_sec", compress_mbps)
      .Num("decompress_mb_per_sec", decompress_mbps)
      .Num("block_compression_ratio",
           static_cast<double>(block.size()) / compressed.size());
  json.Write(line);
}

void RunAll() {
  PrintBanner("micro: trace store encode/decode throughput");
  BenchJsonWriter json("micro_trace_store");
  RunCodecBench(json);
  RunBench(/*num_events=*/10'000, /*iterations=*/20, json);
  RunBench(/*num_events=*/100'000, /*iterations=*/5, json);
  RunBench(/*num_events=*/1'000'000, /*iterations=*/1, json);
}

}  // namespace
}  // namespace ddr

int main() {
  ddr::RunAll();
  return 0;
}
