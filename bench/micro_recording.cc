// google-benchmark microbenchmarks of the recording hot paths: per-event
// recorder costs for each determinism model, event codec throughput, and
// log append. These are the real-nanosecond counterparts of the virtual
// cost model in src/record/cost_model.h.

#include <benchmark/benchmark.h>

#include "src/record/event_log.h"
#include "src/record/model_recorders.h"
#include "src/record/selective_recorder.h"
#include "src/sim/environment.h"

namespace ddr {
namespace {

Event MakeMemoryEvent(uint64_t seq) {
  Event event;
  event.seq = seq;
  event.time = seq * 50;
  event.fiber = static_cast<FiberId>(seq % 8);
  event.node = 1;
  event.type = EventType::kSharedRead;
  event.obj = 42;
  event.value = seq * 2654435761u;
  event.bytes = 8;
  event.region = static_cast<RegionId>(seq % 4);
  return event;
}

// Minimal environment so recorders can charge their ledger.
class RecorderFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    env_ = std::make_unique<Environment>(Environment::Options{});
  }
  void TearDown(const benchmark::State&) override { env_.reset(); }

 protected:
  std::unique_ptr<Environment> env_;
};

BENCHMARK_F(RecorderFixture, PerfectRecorderOnEvent)(benchmark::State& state) {
  PerfectRecorder recorder;
  recorder.AttachEnvironment(env_.get());
  uint64_t seq = 0;
  for (auto _ : state) {
    recorder.OnEvent(MakeMemoryEvent(seq++));
  }
  state.SetItemsProcessed(static_cast<int64_t>(seq));
}

BENCHMARK_F(RecorderFixture, ValueRecorderOnEvent)(benchmark::State& state) {
  ValueRecorder recorder;
  recorder.AttachEnvironment(env_.get());
  uint64_t seq = 0;
  for (auto _ : state) {
    recorder.OnEvent(MakeMemoryEvent(seq++));
  }
  state.SetItemsProcessed(static_cast<int64_t>(seq));
}

BENCHMARK_F(RecorderFixture, OutputRecorderSkipsMemoryEvent)(benchmark::State& state) {
  OutputRecorder recorder(OutputRecorder::Mode::kOutputsOnly);
  recorder.AttachEnvironment(env_.get());
  uint64_t seq = 0;
  for (auto _ : state) {
    recorder.OnEvent(MakeMemoryEvent(seq++));  // filtered: no interception
  }
  state.SetItemsProcessed(static_cast<int64_t>(seq));
}

BENCHMARK_F(RecorderFixture, SelectiveRecorderRelaxed)(benchmark::State& state) {
  SelectiveRecorder recorder("bench", [](const Event& event) {
    return event.region == 1;  // one control region
  });
  recorder.AttachEnvironment(env_.get());
  uint64_t seq = 0;
  for (auto _ : state) {
    recorder.OnEvent(MakeMemoryEvent(seq++));
  }
  state.SetItemsProcessed(static_cast<int64_t>(seq));
}

void BM_EventEncode(benchmark::State& state) {
  const Event event = MakeMemoryEvent(123456);
  Encoder encoder;
  for (auto _ : state) {
    encoder.Clear();
    event.EncodeTo(&encoder);
    benchmark::DoNotOptimize(encoder.buffer().data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(encoder.size()));
}
BENCHMARK(BM_EventEncode);

void BM_EventDecode(benchmark::State& state) {
  const Event event = MakeMemoryEvent(123456);
  Encoder encoder;
  event.EncodeTo(&encoder);
  const std::vector<uint8_t> bytes = encoder.buffer();
  for (auto _ : state) {
    Decoder decoder(bytes);
    auto decoded = Event::DecodeFrom(&decoder);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_EventDecode);

void BM_EventLogAppend(benchmark::State& state) {
  EventLog log;
  uint64_t seq = 0;
  for (auto _ : state) {
    log.Append(MakeMemoryEvent(seq++));
  }
  state.SetItemsProcessed(static_cast<int64_t>(seq));
}
BENCHMARK(BM_EventLogAppend);

void BM_EventLogEncodeDecodeRoundtrip(benchmark::State& state) {
  EventLog log;
  for (uint64_t i = 0; i < 1000; ++i) {
    log.Append(MakeMemoryEvent(i));
  }
  for (auto _ : state) {
    auto bytes = log.Encode();
    auto decoded = EventLog::Decode(bytes);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_EventLogEncodeDecodeRoundtrip);

}  // namespace
}  // namespace ddr

BENCHMARK_MAIN();
