// Microbenchmark for the corpus-serving read path: decode throughput per
// I/O backend (stream vs pread vs mmap), the decoded-chunk cache's
// warm-vs-cold effect across capacities, and concurrent reader scaling
// over one shared CorpusReader handle. Plain-main (no google-benchmark)
// so it runs everywhere; emits BENCH_micro_corpus_serve.json lines for
// cross-PR tracking.
//
// The acceptance row is the "cache" section: warm-cache corpus replay
// must beat the cold ifstream baseline by >= 2x
// (warm_vs_cold_stream_speedup), and every backend must decode the exact
// same bytes (fingerprint-checked here, bit-asserted in tests).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "bench/bench_util.h"
#include "src/server/corpus_client.h"
#include "src/server/corpus_server.h"
#include "src/trace/corpus.h"
#include "src/util/fault_injection.h"
#include "src/util/hash.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace ddr {
namespace {

constexpr char kCorpusPath[] = "micro_corpus_serve.tmp.ddrc";
constexpr uint64_t kEntries = 8;
constexpr uint64_t kEventsPerEntry = 50'000;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// Same realistically-shaped synthetic events as micro_corpus_batch.
RecordedExecution MakeRecording(uint64_t num_events, uint64_t seed) {
  RecordedExecution recording;
  recording.model = "bench";
  Rng rng(seed);
  SimTime now = 0;
  for (uint64_t seq = 0; seq < num_events; ++seq) {
    Event event;
    event.seq = seq;
    now += 20 + rng.NextIndex(80);
    event.time = now;
    event.fiber = static_cast<FiberId>(seq % 6);
    event.node = static_cast<NodeId>(seq % 3);
    event.obj = 10 + seq % 12;
    event.region = static_cast<RegionId>(seq % 4);
    event.type = seq % 2 == 0 ? EventType::kSharedRead : EventType::kRngDraw;
    event.value = rng.NextIndex(1u << 20);
    event.bytes = 8;
    recording.log.Append(event);
  }
  recording.recorded_events = num_events;
  recording.intercepted_events = num_events;
  return recording;
}

void BuildCorpus() {
  CorpusWriter writer(kCorpusPath);
  CHECK(writer.Begin().ok());
  TraceWriteOptions options;
  options.events_per_chunk = 512;
  options.chunk_filter = TraceFilter::kVarintDelta;
  for (uint64_t i = 0; i < kEntries; ++i) {
    CHECK(writer
              .Add("serve/" + std::to_string(i),
                   MakeRecording(kEventsPerEntry, 1000 + i), options)
              .ok());
  }
  CHECK(writer.Finish().ok());
}

CorpusReaderOptions Options(IoBackend backend, uint64_t cache_bytes) {
  CorpusReaderOptions options;
  options.io.backend = backend;
  options.cache_bytes = cache_bytes;
  return options;
}

// One full serve pass over every entry: the timed unit of work. The
// checksum folds sizes the reader had to get right anyway without adding
// per-event hashing to the timed region (decode correctness is asserted
// separately by VerifyPass, and bit-identity across backends by tests).
uint64_t FullPass(const CorpusReader& corpus) {
  uint64_t checksum = 0;
  for (const CorpusEntry& entry : corpus.entries()) {
    auto trace = corpus.OpenTrace(entry);
    CHECK(trace.ok()) << trace.status();
    auto log = trace->ReadAllEvents();
    CHECK(log.ok()) << log.status();
    checksum += log->size() + log->encoded_size_bytes();
  }
  return checksum;
}

// Untimed: an order-sensitive fingerprint of every decoded event, for the
// cross-backend equivalence check.
uint64_t VerifyPass(const CorpusReader& corpus) {
  Fingerprint fp;
  for (const CorpusEntry& entry : corpus.entries()) {
    auto trace = corpus.OpenTrace(entry);
    CHECK(trace.ok()) << trace.status();
    auto log = trace->ReadAllEvents();
    CHECK(log.ok()) << log.status();
    for (const Event& event : log->events()) {
      fp.Mix(event.SemanticHash());
    }
  }
  return fp.value();
}

// Cold decode throughput per backend; all three must produce the same
// event fingerprint. Returns the cold stream-backend seconds (the
// baseline the cache section compares against).
double RunBackendBench(BenchJsonWriter& json) {
  const uint64_t total_events = kEntries * kEventsPerEntry;
  double stream_seconds = 0.0;
  uint64_t reference_fp = 0;
  for (IoBackend backend :
       {IoBackend::kStream, IoBackend::kPread, IoBackend::kMmap}) {
    auto corpus = CorpusReader::Open(kCorpusPath, Options(backend, 0));
    CHECK(corpus.ok()) << corpus.status();
    CHECK_EQ(static_cast<int>(corpus->io_backend()), static_cast<int>(backend));

    const auto start = std::chrono::steady_clock::now();
    FullPass(*corpus);
    const double seconds = Seconds(start);
    // Snapshot I/O accounting before the untimed verify pass below pulls
    // the same chunks again: the stat must describe the timed pass only.
    const uint64_t timed_bytes_read = corpus->bytes_read();
    // Untimed equivalence check: all backends decode the same events.
    const uint64_t fp = VerifyPass(*corpus);
    if (backend == IoBackend::kStream) {
      stream_seconds = seconds;
      reference_fp = fp;
    } else {
      CHECK_EQ(fp, reference_fp) << "backend decode mismatch";
    }

    const double meps = total_events / seconds / 1e6;
    std::printf("backend %-7s: %7.2f Mev/s cold (%llu bytes read)\n",
                std::string(IoBackendName(backend)).c_str(), meps,
                static_cast<unsigned long long>(timed_bytes_read));
    JsonLine line = json.Line();
    line.Str("section", "backend")
        .Str("io", std::string(IoBackendName(backend)))
        .Int("events", total_events)
        .Num("seconds", seconds)
        .Num("mevents_per_sec", meps)
        .Int("bytes_read", timed_bytes_read);
    json.Write(line);
  }
  return stream_seconds;
}

// Cache-capacity sweep on the mmap backend: cold pass, then a warm pass
// over the same reader. The acceptance number is warm-vs-cold-stream.
void RunCacheBench(double cold_stream_seconds, BenchJsonWriter& json) {
  const uint64_t total_events = kEntries * kEventsPerEntry;
  for (uint64_t cache_mb : {0ull, 4ull, 256ull}) {
    auto corpus =
        CorpusReader::Open(kCorpusPath, Options(IoBackend::kMmap, cache_mb << 20));
    CHECK(corpus.ok()) << corpus.status();

    auto start = std::chrono::steady_clock::now();
    const uint64_t cold_sum = FullPass(*corpus);
    const double cold_seconds = Seconds(start);
    // Snapshot the counters between the passes: the combined hit rate
    // averages the cold pass's guaranteed misses into the warm pass's
    // number (reading "50%" for a fully cache-resident warm pass), which
    // is exactly the misleading figure the warm pass is meant to isolate.
    const ChunkCacheStats cold_stats = corpus->cache_stats();

    start = std::chrono::steady_clock::now();
    const uint64_t warm_sum = FullPass(*corpus);
    const double warm_seconds = Seconds(start);
    CHECK_EQ(cold_sum, warm_sum);

    const ChunkCacheStats stats = corpus->cache_stats();
    const uint64_t warm_hits = stats.hits - cold_stats.hits;
    const uint64_t warm_misses = stats.misses - cold_stats.misses;
    const double warm_hit_rate =
        warm_hits + warm_misses == 0
            ? 0.0
            : static_cast<double>(warm_hits) /
                  static_cast<double>(warm_hits + warm_misses);
    const double warm_meps = total_events / warm_seconds / 1e6;
    const double speedup_vs_cold_stream = cold_stream_seconds / warm_seconds;
    std::printf(
        "cache %4llu MB : cold %6.2f Mev/s  warm %7.2f Mev/s  "
        "warm hit rate %5.1f%%  warm vs cold-stream %5.2fx\n",
        static_cast<unsigned long long>(cache_mb),
        total_events / cold_seconds / 1e6, warm_meps, 100.0 * warm_hit_rate,
        speedup_vs_cold_stream);

    JsonLine line = json.Line();
    line.Str("section", "cache")
        .Str("io", "mmap")
        .Int("cache_mb", cache_mb)
        .Int("events", total_events)
        .Num("cold_mevents_per_sec", total_events / cold_seconds / 1e6)
        .Num("warm_mevents_per_sec", warm_meps)
        .Num("warm_hit_rate", warm_hit_rate)
        .Int("warm_hits", warm_hits)
        .Int("warm_misses", warm_misses)
        .Int("cache_hits", stats.hits)
        .Int("cache_misses", stats.misses)
        .Int("cache_evictions", stats.evictions)
        .Num("warm_vs_cold_stream_speedup", speedup_vs_cold_stream);
    json.Write(line);
  }
}

// Concurrent serving: N threads each doing a full pass over one shared
// CorpusReader (overlapping entries — the worst case for a per-reader
// stream, the best case for the shared cache).
void RunConcurrencyBench(BenchJsonWriter& json) {
  const unsigned cores = std::thread::hardware_concurrency();
  for (int thread_count : {1, 2, 4, 8}) {
    auto corpus = CorpusReader::Open(
        kCorpusPath, Options(IoBackend::kMmap, uint64_t{256} << 20));
    CHECK(corpus.ok()) << corpus.status();

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int t = 0; t < thread_count; ++t) {
      threads.emplace_back([&]() { FullPass(*corpus); });
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
    const double seconds = Seconds(start);

    const uint64_t served_events =
        kEntries * kEventsPerEntry * static_cast<uint64_t>(thread_count);
    const double meps = served_events / seconds / 1e6;
    const ChunkCacheStats stats = corpus->cache_stats();
    std::printf(
        "serve %d thread(s) on %u core(s): %7.2f Mev/s aggregate "
        "(hit rate %5.1f%%, %llu cold bytes)\n",
        thread_count, cores, meps, 100.0 * stats.hit_rate(),
        static_cast<unsigned long long>(corpus->bytes_read()));

    JsonLine line = json.Line();
    line.Str("section", "threads")
        .Int("threads", static_cast<uint64_t>(thread_count))
        .Int("hardware_cores", cores)
        .Int("served_events", served_events)
        .Num("seconds", seconds)
        .Num("mevents_per_sec", meps)
        .Num("hit_rate", stats.hit_rate())
        .Int("bytes_read", corpus->bytes_read());
    json.Write(line);
  }
}

// Append-then-serve: a warm reader survives the bundle being grown
// underneath it. The reader serves the old index until Reopen; the cache
// object (and its accumulated counters) carries across the Reopen, and
// the post-Reopen pass serves old + new entries from the grown bundle.
void RunAppendBench(BenchJsonWriter& json) {
  constexpr uint64_t kAppended = 2;
  auto corpus = CorpusReader::Open(
      kCorpusPath, Options(IoBackend::kMmap, uint64_t{256} << 20));
  CHECK(corpus.ok()) << corpus.status();
  const size_t entries_before = corpus->entries().size();

  // Fill the cache, then take a warm pass so the counters have real hits
  // to carry across the Reopen.
  FullPass(*corpus);
  FullPass(*corpus);
  const ChunkCacheStats warm_stats = corpus->cache_stats();

  // Grow the bundle in place while the reader stays open.
  const auto append_start = std::chrono::steady_clock::now();
  uint64_t append_bytes_written = 0;
  {
    auto writer = CorpusWriter::AppendTo(kCorpusPath);
    CHECK(writer.ok()) << writer.status();
    TraceWriteOptions options;
    options.events_per_chunk = 512;
    options.chunk_filter = TraceFilter::kVarintDelta;
    for (uint64_t i = 0; i < kAppended; ++i) {
      CHECK((*writer)
                ->Add("appended/" + std::to_string(i),
                      MakeRecording(kEventsPerEntry, 9000 + i), options)
                .ok());
    }
    CHECK((*writer)->Finish().ok());
    append_bytes_written = (*writer)->bytes_written();
  }
  const double append_seconds = Seconds(append_start);
  CHECK_EQ(corpus->entries().size(), entries_before);  // old index until Reopen

  CHECK(corpus->Reopen().ok());
  CHECK(corpus->journaled());
  CHECK_EQ(corpus->entries().size(), entries_before + kAppended);
  const ChunkCacheStats reopened_stats = corpus->cache_stats();
  CHECK(reopened_stats.hits >= warm_stats.hits);  // counters survived

  const auto start = std::chrono::steady_clock::now();
  FullPass(*corpus);
  const double seconds = Seconds(start);
  const uint64_t served_events = (entries_before + kAppended) * kEventsPerEntry;
  const double meps = served_events / seconds / 1e6;

  std::printf(
      "append %llu entries in %.3fs; reopen serves %zu entries at %7.2f "
      "Mev/s (cache counters survive: %llu hits carried)\n",
      static_cast<unsigned long long>(kAppended), append_seconds,
      entries_before + kAppended, meps,
      static_cast<unsigned long long>(reopened_stats.hits));

  JsonLine line = json.Line();
  line.Str("section", "append")
      .Int("entries_before", entries_before)
      .Int("entries_appended", kAppended)
      .Num("append_seconds", append_seconds)
      .Int("append_bytes_written", append_bytes_written)
      .Int("generation", corpus->generation())
      .Int("dead_bytes", corpus->dead_bytes())
      .Int("served_events_post_reopen", served_events)
      .Num("post_reopen_mevents_per_sec", meps)
      .Int("cache_hits_carried", reopened_stats.hits)
      .Num("hit_rate", corpus->cache_stats().hit_rate());
  json.Write(line);
}

// Append scaling: one identical small entry appended to a small and a
// large base bundle, in both modes. The in-place journal's bytes written
// must stay flat in the base size — O(new entry + index) — while the
// rewrite path (the only behavior before the journal existed) is the
// linear control that pays the whole file every time.
void RunAppendScalingBench(BenchJsonWriter& json) {
  constexpr uint64_t kAppendEvents = 2'000;
  TraceWriteOptions trace_options;
  trace_options.events_per_chunk = 512;
  trace_options.chunk_filter = TraceFilter::kVarintDelta;

  const auto copy_file = [](const std::string& from, const std::string& to) {
    std::ifstream in(from, std::ios::binary);
    std::ofstream out(to, std::ios::binary | std::ios::trunc);
    out << in.rdbuf();
    CHECK(in.good()) << from;
    CHECK(out.good()) << to;
  };
  const auto file_size = [](const std::string& path) -> uint64_t {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    CHECK(in.good()) << path;
    return static_cast<uint64_t>(in.tellg());
  };

  uint64_t in_place_written[2] = {0, 0};
  uint64_t rewrite_written[2] = {0, 0};
  uint64_t base_sizes[2] = {0, 0};
  const uint64_t base_entry_counts[2] = {2, 8};
  for (int b = 0; b < 2; ++b) {
    const uint64_t base_entries = base_entry_counts[b];
    const std::string base_path = "micro_corpus_serve_base" +
                                  std::to_string(base_entries) + ".tmp.ddrc";
    {
      CorpusWriter writer(base_path);
      CHECK(writer.Begin().ok());
      for (uint64_t i = 0; i < base_entries; ++i) {
        CHECK(writer
                  .Add("base/" + std::to_string(i),
                       MakeRecording(kEventsPerEntry, 3000 + i), trace_options)
                  .ok());
      }
      CHECK(writer.Finish().ok());
    }
    base_sizes[b] = file_size(base_path);

    for (const CorpusAppendMode mode :
         {CorpusAppendMode::kInPlace, CorpusAppendMode::kRewrite}) {
      const std::string path = "micro_corpus_serve_scale.tmp.ddrc";
      copy_file(base_path, path);
      CorpusAppendOptions options;
      options.mode = mode;
      const auto start = std::chrono::steady_clock::now();
      uint64_t bytes_written = 0;
      {
        auto writer = CorpusWriter::AppendTo(path, options);
        CHECK(writer.ok()) << writer.status();
        CHECK((*writer)
                  ->Add("appended/one", MakeRecording(kAppendEvents, 77),
                        trace_options)
                  .ok());
        CHECK((*writer)->Finish().ok());
        bytes_written = (*writer)->bytes_written();
      }
      const double seconds = Seconds(start);
      auto reader = CorpusReader::Open(path);
      CHECK(reader.ok()) << reader.status();
      CHECK_EQ(reader->entries().size(), base_entries + 1);
      CHECK(reader->VerifyAll().ok());

      const bool in_place = mode == CorpusAppendMode::kInPlace;
      (in_place ? in_place_written : rewrite_written)[b] = bytes_written;
      std::printf(
          "append-scaling %-8s: base %llu entries (%8llu B) + 1 entry -> "
          "%8llu bytes written in %.4fs\n",
          in_place ? "in-place" : "rewrite",
          static_cast<unsigned long long>(base_entries),
          static_cast<unsigned long long>(base_sizes[b]),
          static_cast<unsigned long long>(bytes_written), seconds);

      JsonLine line = json.Line();
      line.Str("section", "append-scaling")
          .Str("mode", in_place ? "in-place" : "rewrite")
          .Int("base_entries", base_entries)
          .Int("base_bytes", base_sizes[b])
          .Int("appended_events", kAppendEvents)
          .Int("bytes_written", bytes_written)
          .Num("seconds", seconds);
      json.Write(line);
      std::remove(path.c_str());
    }
    std::remove(base_path.c_str());
  }

  // The acceptance shape: in-place cost is flat in base size (only the
  // index re-list grows), the rewrite cost is linear (it exceeds the
  // base it copied).
  CHECK(in_place_written[1] < in_place_written[0] + (64 << 10));
  CHECK(in_place_written[1] < base_sizes[1] / 2);
  CHECK(rewrite_written[1] > base_sizes[1]);
}

// The daemon transport tax: N clients over a unix-domain socket each
// verifying every entry (a full decode through the server's shared
// cache) vs the identical workload done in-process on one shared
// CorpusReader. Same work, same cache shape — the delta is framing +
// socket hops + the admission queue.
void RunServerBench(BenchJsonWriter& json) {
  constexpr char kSocketPath[] = "micro_corpus_serve.tmp.sock";
  constexpr int kRounds = 3;

  std::vector<std::string> names;
  {
    auto probe = CorpusReader::Open(
        kCorpusPath, Options(IoBackend::kMmap, uint64_t{256} << 20));
    CHECK(probe.ok()) << probe.status();
    for (const CorpusEntry& entry : probe->entries()) {
      names.push_back(entry.name);
    }
  }

  for (int client_count : {1, 2, 4, 8}) {
    const uint64_t requests =
        static_cast<uint64_t>(kRounds) * names.size() *
        static_cast<uint64_t>(client_count);

    // In-process baseline: the same verify workload on one shared reader.
    auto direct = CorpusReader::Open(
        kCorpusPath, Options(IoBackend::kMmap, uint64_t{256} << 20));
    CHECK(direct.ok()) << direct.status();
    const auto direct_start = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> threads;
      for (int t = 0; t < client_count; ++t) {
        threads.emplace_back([&]() {
          for (int round = 0; round < kRounds; ++round) {
            for (const CorpusEntry& entry : direct->entries()) {
              auto trace = direct->OpenTrace(entry);
              CHECK(trace.ok()) << trace.status();
              CHECK(trace->Verify().ok());
            }
          }
        });
      }
      for (std::thread& thread : threads) {
        thread.join();
      }
    }
    const double direct_seconds = Seconds(direct_start);

    // Served: same requests through the daemon, one connection per client.
    CorpusServerOptions options;
    options.socket_path = kSocketPath;
    options.workers = client_count;
    options.queue_capacity = 64;
    options.reader = Options(IoBackend::kMmap, uint64_t{256} << 20);
    auto server = CorpusServer::Start(kCorpusPath, options);
    CHECK(server.ok()) << server.status();
    const auto socket_start = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> threads;
      for (int t = 0; t < client_count; ++t) {
        threads.emplace_back([&]() {
          auto client = CorpusClient::ConnectUnixSocket(kSocketPath);
          CHECK(client.ok()) << client.status();
          for (int round = 0; round < kRounds; ++round) {
            for (const std::string& name : names) {
              auto verified = client->Verify(name);
              CHECK(verified.ok()) << verified.status();
            }
          }
        });
      }
      for (std::thread& thread : threads) {
        thread.join();
      }
    }
    const double socket_seconds = Seconds(socket_start);
    const ServeStats stats = (*server)->Snapshot();
    (*server)->RequestStop();
    (*server)->Wait();

    const double direct_rps = requests / direct_seconds;
    const double socket_rps = requests / socket_seconds;
    std::printf(
        "server %d client(s): %8.1f req/s over unix socket vs %8.1f "
        "in-process (tax %.2fx, hit rate %5.1f%%)\n",
        client_count, socket_rps, direct_rps, socket_seconds / direct_seconds,
        100.0 * stats.cache.hit_rate());

    JsonLine line = json.Line();
    line.Str("section", "server")
        .Int("clients", static_cast<uint64_t>(client_count))
        .Int("requests", requests)
        .Num("direct_seconds", direct_seconds)
        .Num("socket_seconds", socket_seconds)
        .Num("direct_requests_per_sec", direct_rps)
        .Num("socket_requests_per_sec", socket_rps)
        .Num("transport_tax", socket_seconds / direct_seconds)
        .Num("hit_rate", stats.cache.hit_rate())
        .Int("bytes_served", stats.bytes_served);
    json.Write(line);
  }
}

// The price of resilience: one client's verify throughput under four
// configurations — clean wire with and without the retry machinery
// armed (the delta must be noise: an unarmed fault layer is one relaxed
// atomic load, and an idle retry loop is one branch), then 1% injected
// send failures with retries off (loud errors leak to the caller) vs on
// (absorbed; zero failures surface).
void RunResilienceBench(BenchJsonWriter& json) {
  constexpr char kSocketPath[] = "micro_corpus_serve_res.tmp.sock";
  constexpr uint64_t kRequests = 200;

  std::vector<std::string> names;
  {
    auto probe = CorpusReader::Open(
        kCorpusPath, Options(IoBackend::kMmap, uint64_t{256} << 20));
    CHECK(probe.ok()) << probe.status();
    for (const CorpusEntry& entry : probe->entries()) {
      names.push_back(entry.name);
    }
  }

  CorpusServerOptions options;
  options.socket_path = kSocketPath;
  options.workers = 2;
  options.queue_capacity = 64;
  options.reader = Options(IoBackend::kMmap, uint64_t{256} << 20);
  auto server = CorpusServer::Start(kCorpusPath, options);
  CHECK(server.ok()) << server.status();

  struct Config {
    const char* label;
    const char* plan;  // "" = no faults
    int retries;
  };
  constexpr Config kConfigs[] = {
      {"clean", "", 0},
      {"clean_retries_armed", "", 3},
      {"faulty_no_retries", "client.send:unavail/100", 0},
      {"faulty_retries", "client.send:unavail/100", 3},
  };

  double baseline_rps = 0.0;
  for (const Config& config : kConfigs) {
    if (config.plan[0] != '\0') {
      CHECK(SetFaultPlan(config.plan).ok());
    } else {
      ClearFaultPlan();
    }
    CorpusClientOptions client_options;
    client_options.timeout_ms = 5000;
    client_options.max_retries = config.retries;
    client_options.backoff_initial_ms = 1;
    auto client = CorpusClient::ConnectUnixSocket(kSocketPath, client_options);
    CHECK(client.ok()) << client.status();

    uint64_t ok_count = 0;
    uint64_t failed = 0;
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < kRequests; ++i) {
      auto verified = client->Verify(names[i % names.size()]);
      verified.ok() ? ++ok_count : ++failed;
    }
    const double seconds = Seconds(start);
    ClearFaultPlan();

    if (config.retries > 0) {
      CHECK_EQ(failed, uint64_t{0}) << config.label;
    }
    const double rps = kRequests / seconds;
    if (baseline_rps == 0.0) {
      baseline_rps = rps;
    }
    std::printf(
        "resilience %-19s: %8.1f req/s (%5.2fx of clean), %llu ok / %llu "
        "failed\n",
        config.label, rps, rps / baseline_rps,
        static_cast<unsigned long long>(ok_count),
        static_cast<unsigned long long>(failed));

    JsonLine line = json.Line();
    line.Str("section", "resilience")
        .Str("config", config.label)
        .Str("fault_plan", config.plan)
        .Int("max_retries", static_cast<uint64_t>(config.retries))
        .Int("requests", kRequests)
        .Int("ok", ok_count)
        .Int("failed", failed)
        .Num("seconds", seconds)
        .Num("requests_per_sec", rps)
        .Num("rps_vs_clean", rps / baseline_rps);
    json.Write(line);
  }

  (*server)->RequestStop();
  (*server)->Wait();
}

void RunAll() {
  PrintBanner("micro: corpus serving — backends, chunk cache, concurrency");
  BenchJsonWriter json("micro_corpus_serve");
  BuildCorpus();
  const double cold_stream_seconds = RunBackendBench(json);
  RunCacheBench(cold_stream_seconds, json);
  RunConcurrencyBench(json);
  RunAppendBench(json);
  RunAppendScalingBench(json);
  RunServerBench(json);
  RunResilienceBench(json);
  std::remove(kCorpusPath);
}

}  // namespace
}  // namespace ddr

int main() {
  ddr::RunAll();
  return 0;
}
