// Measures post-factum inference effort vs. how much the recorder kept —
// the paper's §2 warning that ultra-relaxed models can need "prohibitively
// large post-factum analysis times", and §3.2's observation that debugging
// efficiency (DE) is what that costs the developer.
//
// Sweeps the overflow bug's input space size (the inference search space)
// and compares output-only (solver), output-heavy (inputs recorded), and
// failure determinism (seed + input search).

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "src/apps/overflow_app.h"
#include "src/apps/scenarios.h"
#include "src/replay/solver.h"
#include "src/util/logging.h"

namespace ddr {
namespace {

void RunScaling() {
  PrintBanner("Inference effort vs. recording completeness (overflow bug)");

  TablePrinter table({"input-space", "model", "attempts", "solver nodes",
                      "inference wall (s)", "DF", "DE"});
  for (const int64_t max_len : {64, 128, 256, 512}) {
    BugScenario scenario = MakeOverflowScenario();
    // Widen the request-length domain: the search space scales with it.
    for (auto& domain : scenario.input_domains) {
      domain.hi = max_len;
    }
    // Re-derive a production world whose inputs crash under this domain.
    scenario.production_world_seed = [max_len] {
      for (uint64_t seed = 1;; ++seed) {
        Rng rng(seed);
        for (int i = 0; i < 3; ++i) {
          if (rng.NextInRange(1, max_len) > 48) {
            return seed;
          }
        }
      }
    }();
    // Rebuild program factory + symbolic model against the wider domain.
    const int64_t capacity = 48;
    scenario.make_program = [max_len](uint64_t world_seed) -> std::unique_ptr<SimProgram> {
      OverflowOptions options;
      options.world_seed = world_seed;
      options.max_len = max_len;
      return std::make_unique<OverflowProgram>(options);
    };
    const uint32_t num_requests = 3;
    scenario.symbolic_model =
        [max_len](const std::vector<uint64_t>& outputs) -> std::unique_ptr<CspProblem> {
      auto problem = std::make_unique<CspProblem>();
      std::vector<CspProblem::VarId> lens;
      for (uint32_t i = 0; i < num_requests; ++i) {
        lens.push_back(problem->AddVariable("len" + std::to_string(i), 1, max_len));
      }
      for (size_t i = 0; i < outputs.size() && i < lens.size(); ++i) {
        problem->AddLinearEquals({{lens[i], 1}}, static_cast<int64_t>(outputs[i]));
      }
      return problem;
    };
    (void)capacity;
    scenario.inference_budget.max_attempts = 5000;
    scenario.inference_budget.max_wall_seconds = 10.0;

    ExperimentHarness harness(scenario);
    CHECK(harness.Prepare().ok());
    for (DeterminismModel model :
         {DeterminismModel::kOutputOnly, DeterminismModel::kOutputHeavy,
          DeterminismModel::kFailure}) {
      ExperimentRow row = harness.RunModel(model);
      table.AddRow({StrPrintf("[1,%lld]^3", static_cast<long long>(max_len)),
                    std::string(DeterminismModelName(model)),
                    StrPrintf("%llu", static_cast<unsigned long long>(row.inference.attempts)),
                    StrPrintf("%llu", static_cast<unsigned long long>(row.inference.solver_nodes)),
                    FormatDouble(row.inference.wall_seconds, 4),
                    FormatDouble(row.fidelity), FormatDouble(row.efficiency, 4)});
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nShape check: recording more (output-heavy logs inputs) keeps\n"
      "inference effort flat; recording less pushes work into replay-time\n"
      "search that grows with the input space, collapsing DE.\n");
}

}  // namespace
}  // namespace ddr

int main() {
  ddr::RunScaling();
  return 0;
}
