// google-benchmark microbenchmarks of the deterministic substrate and the
// analysis hot paths: fiber context switches, instrumented memory access,
// channel transfer, race-detector event processing, and vector clocks.

#include <benchmark/benchmark.h>

#include "src/analysis/race_detector.h"
#include "src/sim/channel.h"
#include "src/sim/environment.h"
#include "src/sim/shared_var.h"
#include "src/util/vector_clock.h"

namespace ddr {
namespace {

void BM_FiberPingPong(benchmark::State& state) {
  // Measures a full yield round-trip between two fibers (two baton handoffs
  // + scheduler pick each way).
  const uint64_t switches_per_run = 2000;
  uint64_t total = 0;
  for (auto _ : state) {
    Environment::Options options;
    options.scheduling.preempt_probability = 0.0;
    Environment env(options);
    env.Run("pingpong", [&](Environment& e) {
      FiberId other = e.Spawn("other", [&] {
        for (uint64_t i = 0; i < switches_per_run / 2; ++i) {
          e.Yield();
        }
      });
      for (uint64_t i = 0; i < switches_per_run / 2; ++i) {
        e.Yield();
      }
      e.Join(other);
    });
    total += switches_per_run;
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
}
BENCHMARK(BM_FiberPingPong)->Unit(benchmark::kMillisecond);

void BM_SharedVarAccess(benchmark::State& state) {
  const uint64_t accesses_per_run = 20000;
  uint64_t total = 0;
  for (auto _ : state) {
    Environment::Options options;
    options.scheduling.preempt_probability = 0.0;
    Environment env(options);
    env.Run("cells", [&](Environment& e) {
      SharedVar<uint64_t> cell(e, "cell", 0);
      for (uint64_t i = 0; i < accesses_per_run / 2; ++i) {
        cell.Store(cell.Load() + 1);
      }
    });
    total += accesses_per_run;
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
}
BENCHMARK(BM_SharedVarAccess)->Unit(benchmark::kMillisecond);

void BM_ChannelTransfer(benchmark::State& state) {
  const uint64_t messages_per_run = 5000;
  uint64_t total = 0;
  for (auto _ : state) {
    Environment::Options options;
    options.scheduling.preempt_probability = 0.0;
    Environment env(options);
    env.Run("channel", [&](Environment& e) {
      Channel<uint64_t> chan(e, "chan");
      FiberId producer = e.Spawn("producer", [&] {
        for (uint64_t i = 0; i < messages_per_run; ++i) {
          chan.Send(i);
        }
      });
      for (uint64_t i = 0; i < messages_per_run; ++i) {
        benchmark::DoNotOptimize(chan.Recv());
      }
      e.Join(producer);
    });
    total += messages_per_run;
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
}
BENCHMARK(BM_ChannelTransfer)->Unit(benchmark::kMillisecond);

void BM_RaceDetectorOnEvent(benchmark::State& state) {
  RaceDetector detector(/*report_once_per_cell=*/true);
  uint64_t seq = 0;
  for (auto _ : state) {
    Event event;
    event.seq = seq;
    event.fiber = static_cast<FiberId>(seq % 4);
    event.type = (seq % 3 == 0) ? EventType::kSharedWrite : EventType::kSharedRead;
    event.obj = 7 + (seq % 16);
    event.value = seq;
    detector.OnEvent(event);
    ++seq;
  }
  state.SetItemsProcessed(static_cast<int64_t>(seq));
}
BENCHMARK(BM_RaceDetectorOnEvent);

void BM_VectorClockJoin(benchmark::State& state) {
  VectorClock a(16);
  VectorClock b(16);
  for (uint32_t i = 0; i < 16; ++i) {
    a.Set(i, i * 3);
    b.Set(i, 50 - i);
  }
  for (auto _ : state) {
    VectorClock c = a;
    c.Join(b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_VectorClockJoin);

void BM_VectorClockHappensBefore(benchmark::State& state) {
  VectorClock a(16);
  VectorClock b(16);
  for (uint32_t i = 0; i < 16; ++i) {
    a.Set(i, i);
    b.Set(i, i + 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.HappensBeforeOrEqual(b));
  }
}
BENCHMARK(BM_VectorClockHappensBefore);

}  // namespace
}  // namespace ddr

BENCHMARK_MAIN();
