// Microbenchmark for the streaming/corpus/batch pipeline: streaming-write
// throughput vs. the buffered Serialize path, the varint-delta chunk
// filter's size effect, and batch-runner scaling across worker threads.
// Plain-main (no google-benchmark) so it runs everywhere; emits
// BENCH_micro_corpus_batch.json lines for cross-PR tracking.

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "src/apps/scenarios.h"
#include "src/core/batch_runner.h"
#include "src/trace/corpus.h"
#include "src/trace/streaming_writer.h"
#include "src/trace/trace_writer.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace ddr {
namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// Same realistically-shaped synthetic recording as micro_trace_store.
RecordedExecution MakeRecording(uint64_t num_events) {
  RecordedExecution recording;
  recording.model = "bench";
  Rng rng(1234);
  SimTime now = 0;
  for (uint64_t seq = 0; seq < num_events; ++seq) {
    Event event;
    event.seq = seq;
    now += 20 + rng.NextIndex(80);
    event.time = now;
    event.fiber = static_cast<FiberId>(seq % 6);
    event.node = static_cast<NodeId>(seq % 3);
    event.obj = 10 + seq % 12;
    event.region = static_cast<RegionId>(seq % 4);
    switch (seq % 5) {
      case 0:
        event.type = EventType::kSharedRead;
        event.value = rng.NextIndex(1 << 16);
        event.bytes = 8;
        break;
      case 1:
        event.type = EventType::kSharedWrite;
        event.value = rng.NextIndex(1 << 16);
        event.bytes = 8;
        break;
      case 2:
        event.type = EventType::kContextSwitch;
        event.value = (seq + 1) % 6;
        event.aux = PackSwitchAux(seq, SwitchCause::kPreempt);
        break;
      case 3:
        event.type = EventType::kRngDraw;
        event.value = rng.NextIndex(1u << 30);
        break;
      default:
        event.type = EventType::kInput;
        event.value = rng.NextIndex(1 << 12);
        event.bytes = 4;
        break;
    }
    recording.log.Append(event);
  }
  recording.recorded_events = num_events;
  recording.intercepted_events = num_events;
  return recording;
}

// Buffered Serialize vs. streaming appends (memory sink), per filter.
void RunWriterBench(uint64_t num_events, int iterations, BenchJsonWriter& json) {
  const RecordedExecution recording = MakeRecording(num_events);
  for (TraceFilter filter : {TraceFilter::kNone, TraceFilter::kVarintDelta}) {
    TraceWriteOptions options;
    options.checkpoint_interval = 1024;
    options.chunk_filter = filter;
    const char* filter_name =
        filter == TraceFilter::kNone ? "none" : "varint-delta";

    const TraceWriter writer(options);
    std::vector<uint8_t> image;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iterations; ++i) {
      image = writer.Serialize(recording);
    }
    const double buffered_seconds = Seconds(start) / iterations;

    // Streaming: events arrive one at a time, as from a live recorder.
    const std::vector<Event>& events = recording.log.events();
    uint64_t streamed_bytes = 0;
    start = std::chrono::steady_clock::now();
    for (int i = 0; i < iterations; ++i) {
      BufferByteSink sink;
      StreamingTraceWriter streaming(&sink, options);
      CHECK(streaming.Begin().ok());
      for (const Event& event : events) {
        CHECK(streaming.Append(event).ok());
      }
      CHECK(streaming.Finish(FinishInfoFor(recording)).ok());
      streamed_bytes = streaming.bytes_written();
    }
    const double streaming_seconds = Seconds(start) / iterations;
    CHECK_EQ(streamed_bytes, image.size());

    const double buffered_meps = num_events / buffered_seconds / 1e6;
    const double streaming_meps = num_events / streaming_seconds / 1e6;
    const double raw_bytes = static_cast<double>(recording.log.Encode().size());
    std::printf(
        "%8llu events [%-12s]: buffered %7.2f Mev/s  streaming %7.2f Mev/s  "
        "%5.2f B/event  ratio %.2fx\n",
        static_cast<unsigned long long>(num_events), filter_name, buffered_meps,
        streaming_meps, static_cast<double>(image.size()) / num_events,
        raw_bytes / image.size());

    JsonLine line = json.Line();
    line.Str("section", "writer")
        .Str("filter", filter_name)
        .Int("events", num_events)
        .Num("buffered_mevents_per_sec", buffered_meps)
        .Num("streaming_mevents_per_sec", streaming_meps)
        .Num("bytes_per_event", static_cast<double>(image.size()) / num_events)
        .Num("compression_ratio", raw_bytes / image.size());
    json.Write(line);
  }
}

// Batch-runner scaling: the same scenario x model grid at 1/2/4/8 worker
// threads, all recordings bundled into one corpus per run.
void RunBatchBench(BenchJsonWriter& json) {
  constexpr char kCorpusPath[] = "micro_corpus_batch.tmp.ddrc";
  double base_seconds = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    // The full registry (hypertable included, so cells are substantial
    // enough for the pool to matter).
    std::vector<BugScenario> scenarios = AllBugScenarios();

    BatchOptions options;
    options.threads = threads;
    options.models = {DeterminismModel::kPerfect, DeterminismModel::kValue,
                      DeterminismModel::kFailure};
    options.corpus_path = kCorpusPath;
    options.trace_options.chunk_filter = TraceFilter::kVarintDelta;

    const auto start = std::chrono::steady_clock::now();
    auto report = BatchRunner(std::move(scenarios), options).Run();
    const double seconds = Seconds(start);
    CHECK(report.ok()) << report.status();
    CHECK_EQ(report->cells.size(), 12u);
    if (threads == 1) {
      base_seconds = seconds;
    }

    auto corpus = CorpusReader::Open(kCorpusPath);
    CHECK(corpus.ok()) << corpus.status();
    uint64_t corpus_bytes = corpus->file_size();
    std::remove(kCorpusPath);

    // Speedup only means something relative to the cores actually present
    // (a 1-core container cannot go faster with more workers), so the
    // hardware concurrency ships with every line.
    const unsigned cores = std::thread::hardware_concurrency();
    const double speedup = base_seconds > 0 ? base_seconds / seconds : 1.0;
    std::printf(
        "batch %d thread(s) on %u core(s): %6.3f s for %zu cells "
        "(speedup %4.2fx, corpus %llu B)\n",
        threads, cores, seconds, report->cells.size(), speedup,
        static_cast<unsigned long long>(corpus_bytes));

    JsonLine line = json.Line();
    line.Str("section", "batch")
        .Int("threads", static_cast<uint64_t>(threads))
        .Int("hardware_cores", cores)
        .Int("cells", report->cells.size())
        .Num("seconds", seconds)
        .Num("speedup_vs_1_thread", speedup)
        .Int("corpus_bytes", corpus_bytes);
    json.Write(line);
  }
}

void RunAll() {
  PrintBanner("micro: streaming writes, chunk filter, batch scaling");
  BenchJsonWriter json("micro_corpus_batch");
  RunWriterBench(/*num_events=*/100'000, /*iterations=*/5, json);
  RunWriterBench(/*num_events=*/1'000'000, /*iterations=*/1, json);
  RunBatchBench(json);
}

}  // namespace
}  // namespace ddr

int main() {
  ddr::RunAll();
  return 0;
}
