// ddr-lint: the determinism/concurrency source checker, as a CLI.
//
//   ddr-lint [--allow=SUBSTR[,SUBSTR...]] [--format=text|json] [path...]
//
// Paths (files or directories; default: src tools tests) are walked for
// *.cc/*.h/*.cpp/*.hpp and checked against the ddr-* rules in
// src/analysis/source_lint.h. Violations print one per line as
// `file:line: [rule] message`.
//
// Exit codes: 0 clean, 1 violations found, 2 usage/environment error —
// so CI can gate on "non-zero" while scripts can still tell "the tree is
// dirty" from "the linter could not run".

#include <cstdio>
#include <string>
#include <vector>

#include "src/analysis/source_lint.h"
#include "src/util/cli_flags.h"
#include "src/util/status.h"

namespace {

constexpr ddr::CliFlag kFlags[] = {
    {"--allow", true},
    {"--format", true},
    {"--help", false},
};

void PrintUsage(std::FILE* out) {
  std::fputs(
      "usage: ddr-lint [--allow=SUBSTR[,SUBSTR...]] [--format=text|json]\n"
      "                [path...]\n"
      "\n"
      "Checks ddr source invariants: banned nondeterminism sources,\n"
      "hash-order iteration in encode/index code, raw durability I/O\n"
      "bypassing fault-injection sites, raw std synchronization outside\n"
      "src/util/, and unjustified NOLINT(ddr-*) suppressions.\n"
      "\n"
      "  --allow=SUBSTR  exempt paths containing SUBSTR from the\n"
      "                  ddr-nondeterminism rule (comma-separated)\n"
      "  --format=json   one JSON object instead of file:line lines\n"
      "                  (exit codes unchanged)\n"
      "\n"
      "Default paths: src tools tests. Exit 0 = clean, 1 = violations,\n"
      "2 = bad invocation or unreadable input.\n",
      out);
}

std::vector<std::string> SplitCommas(const char* text) {
  std::vector<std::string> parts;
  std::string current;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p == ',') {
      if (!current.empty()) {
        parts.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(*p);
    }
  }
  if (!current.empty()) {
    parts.push_back(current);
  }
  return parts;
}

}  // namespace

int main(int argc, char** argv) {
  if (ddr::HasCliFlag(argc, argv, 1, "--help")) {
    PrintUsage(stdout);
    return 0;
  }
  const ddr::Status known = ddr::CheckKnownFlags(argc, argv, 1, kFlags);
  if (!known.ok()) {
    std::fprintf(stderr, "ddr-lint: %s\n", known.ToString().c_str());
    PrintUsage(stderr);
    return 2;
  }

  ddr::LintOptions options;
  if (const char* allow = ddr::CliFlagValue(argc, argv, 1, "--allow")) {
    options.allow = SplitCommas(allow);
  }
  bool json = false;
  if (const char* format = ddr::CliFlagValue(argc, argv, 1, "--format")) {
    if (std::string(format) == "json") {
      json = true;
    } else if (std::string(format) != "text") {
      std::fprintf(stderr, "ddr-lint: unknown --format '%s' (text|json)\n",
                   format);
      return 2;
    }
  }
  std::vector<std::string> roots = ddr::PositionalArgs(argc, argv, 1, kFlags);
  if (roots.empty()) {
    roots = {"src", "tools", "tests"};
  }

  const ddr::Result<std::vector<ddr::LintIssue>> issues =
      ddr::LintTree(roots, options);
  if (!issues.ok()) {
    std::fprintf(stderr, "ddr-lint: %s\n", issues.status().ToString().c_str());
    return 2;
  }
  if (json) {
    std::fputs(ddr::FormatLintIssuesJson(*issues).c_str(), stdout);
  } else {
    for (const ddr::LintIssue& issue : *issues) {
      std::fprintf(stdout, "%s\n", ddr::FormatLintIssue(issue).c_str());
    }
  }
  if (!issues->empty()) {
    std::fprintf(stderr, "ddr-lint: %zu violation%s\n", issues->size(),
                 issues->size() == 1 ? "" : "s");
    return 1;
  }
  return 0;
}
