// ddr-trace: inspect, verify, and replay DDRT trace files and DDRC
// corpus bundles.
//
//   ddr-trace info <file>                     header, metadata, chunk +
//                                             checkpoint tables, sizes
//   ddr-trace dump <file> [--from N] [--count M]
//                                             print events; reads only the
//                                             chunks covering the range
//   ddr-trace verify <file>                   full structural/CRC check
//   ddr-trace replay <file> [--target N]      rebuild the scenario named in
//                                             metadata and replay (from the
//                                             nearest checkpoint <= N when
//                                             --target is given)
//   ddr-trace record <scenario> <file> [--model NAME] [--chunk N] [--ckpt N]
//                                             run a bundled bug scenario and
//                                             save its recording
//   ddr-trace corpus build  <file> [--scenarios a,b] [--models m1,m2]
//                           [--threads N] [--chunk N] [--ckpt N] [--delta]
//                           [--report path]   batch-record every scenario x
//                                             model into one DDRC bundle
//   ddr-trace corpus info   <file>            list bundle entries
//   ddr-trace corpus verify <file>            verify every embedded trace
//   ddr-trace corpus replay <file> [--threads N] [--report path]
//                                             replay + score every entry
//   ddr-trace corpus append <file> [build flags]
//                                             record only the scenario x
//                                             model cells missing from the
//                                             bundle and append them
//   ddr-trace corpus merge  <out> <in>... [--on-collision fail|skip|rename-suffix]
//                                             combine bundles, copying
//                                             images byte-for-byte
//   ddr-trace corpus compact <file> --drop a,b
//                                             drop named entries, rewrite
//                                             the survivors
//   ddr-trace serve <file> --socket <path>|--port <n> [--threads N]
//                           [--queue N] [--watch-ms N]
//                                             long-lived corpus server:
//                                             concurrent clients, live
//                                             append pickup, SIGTERM drain
//   ddr-trace query <cmd> [name] --socket <path>|--host H --port <n>
//                           [--model NAME]    one request against a running
//                                             server (info|list|verify|
//                                             replay|stats|refresh|shutdown)
//
// Exit status: 0 on success/OK, 1 on usage error, 2 on a failed
// verification or replay.

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/analysis/sched/models.h"
#include "src/apps/scenarios.h"
#include "src/core/batch_runner.h"
#include "src/server/corpus_client.h"
#include "src/server/corpus_server.h"
#include "src/trace/corpus.h"
#include "src/trace/trace_reader.h"
#include "src/trace/trace_store.h"
#include "src/util/cli_flags.h"
#include "src/util/string_util.h"

namespace ddr {
namespace {

// ------------------------------------------------------------ flag tables
//
// Every (sub)command declares its full flag vocabulary here and runs the
// argument vector through RequireKnownFlags before doing anything else,
// so a typo'd flag is a loud usage error on every command — `corpus
// merge` used to be the only one that checked.

constexpr CliFlag kReadFlags[] = {{"--io", true}, {"--cache-mb", true}};
constexpr CliFlag kDumpFlags[] = {{"--io", true},
                                  {"--cache-mb", true},
                                  {"--from", true},
                                  {"--count", true}};
constexpr CliFlag kReplayFlags[] = {{"--io", true},
                                    {"--cache-mb", true},
                                    {"--target", true}};
constexpr CliFlag kRecordFlags[] = {{"--model", true},
                                    {"--chunk", true},
                                    {"--ckpt", true},
                                    {"--delta", false}};
constexpr CliFlag kCorpusBuildFlags[] = {
    {"--scenarios", true}, {"--models", true},   {"--threads", true},
    {"--chunk", true},     {"--ckpt", true},     {"--delta", false},
    {"--report", true},    {"--io", true},       {"--cache-mb", true}};
constexpr CliFlag kCorpusAppendFlags[] = {
    {"--scenarios", true}, {"--models", true},   {"--threads", true},
    {"--chunk", true},     {"--ckpt", true},     {"--delta", false},
    {"--report", true},    {"--io", true},       {"--cache-mb", true},
    {"--in-place", false}, {"--rewrite", false}};
constexpr CliFlag kCorpusReplayFlags[] = {{"--threads", true},
                                          {"--report", true},
                                          {"--io", true},
                                          {"--cache-mb", true}};
constexpr CliFlag kCorpusMergeFlags[] = {{"--on-collision", true},
                                         {"--io", true},
                                         {"--cache-mb", true}};
constexpr CliFlag kCorpusCompactFlags[] = {{"--drop", true},
                                           {"--io", true},
                                           {"--cache-mb", true}};
constexpr CliFlag kServeFlags[] = {
    {"--socket", true}, {"--port", true},     {"--threads", true},
    {"--queue", true},  {"--watch-ms", true}, {"--io", true},
    {"--cache-mb", true}};
constexpr CliFlag kQueryFlags[] = {
    {"--socket", true},     {"--host", true},    {"--port", true},
    {"--model", true},      {"--timeout-ms", true}, {"--retries", true},
    {"--backoff-ms", true}};
constexpr CliFlag kSchedListFlags[] = {{"--format", true}};
constexpr CliFlag kSchedExploreFlags[] = {{"--budget", true},
                                          {"--preempt", true},
                                          {"--seed", true},
                                          {"--format", true}};
constexpr CliFlag kSchedReplayFlags[] = {{"--sched", true},
                                         {"--format", true}};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: ddr-trace <command> <file> [options]\n"
               "  info   <file>                   show metadata and layout\n"
               "  dump   <file> [--from N] [--count M]   print events\n"
               "  verify <file>                   verify CRCs and structure\n"
               "  replay <file> [--target N]      replay the recording\n"
               "  record <scenario> <file> [--model NAME] [--chunk N] "
               "[--ckpt N] [--delta]\n"
               "  corpus build  <file> [--scenarios a,b] [--models m1,m2]\n"
               "                [--threads N] [--chunk N] [--ckpt N] "
               "[--delta] [--report path]\n"
               "  corpus info   <file>\n"
               "  corpus verify <file>\n"
               "  corpus replay <file> [--threads N] [--report path]\n"
               "  corpus append <file> [build flags] [--in-place|--rewrite]\n"
               "                record + append only missing cells; --in-place"
               " (default)\n"
               "                journals O(delta) bytes, --rewrite rebuilds "
               "the canonical file\n"
               "  corpus merge  <out> <in>... [--on-collision "
               "fail|skip|rename-suffix]\n"
               "  corpus compact <file> [--drop name1,name2]\n"
               "                drop entries and/or squash a journaled bundle "
               "to canonical form\n"
               "  serve  <file> --socket <path>|--port <n> [--threads N] "
               "[--queue N] [--watch-ms N]\n"
               "                serve the bundle to concurrent clients until "
               "SIGTERM/SIGINT\n"
               "  query  <cmd> [name] --socket <path>|--host H --port <n> "
               "[--model NAME]\n"
               "                [--timeout-ms N] [--retries N] "
               "[--backoff-ms N]\n"
               "                cmd: info list verify replay stats refresh "
               "shutdown\n"
               "                exit 3 = deadline exceeded (server did not "
               "answer in --timeout-ms)\n"
               "  sched  list [--format json]\n"
               "  sched  explore [model...] [--budget N] [--preempt K] "
               "[--seed S] [--format json]\n"
               "                explore interleavings of the named models "
               "(default: the clean\n"
               "                subsystem models); a finding prints "
               "DDR_SCHED=<string> and exits 2\n"
               "  sched  replay <model> --sched <string> [--format json]\n"
               "                re-run one recorded interleaving "
               "bit-identically\n"
               "         scenarios: sum msgdrop overflow hypertable;\n"
               "         models: perfect value output output-heavy failure "
               "debug-rcse\n"
               "  read-side commands (info|dump|verify|replay|corpus "
               "info|verify|replay) also take\n"
               "         --io stream|pread|mmap   I/O backend (default: "
               "DDR_IO_BACKEND or mmap)\n"
               "         --cache-mb N             decoded-chunk cache budget "
               "(default: DDR_CACHE_MB or 64)\n");
}

// Enforces a command's flag table; a typo'd or unsupported flag is a
// usage error, never a silent no-op.
void RequireKnownFlags(int argc, char** argv, std::span<const CliFlag> known) {
  const Status checked = CheckKnownFlags(argc, argv, /*start=*/2, known);
  if (!checked.ok()) {
    std::fprintf(stderr, "ddr-trace: %s\n", checked.ToString().c_str());
    PrintUsage();
    std::exit(1);
  }
}

// Flag values accept both "--flag value" and "--flag=value".
const char* FlagValue(int argc, char** argv, const char* flag) {
  return CliFlagValue(argc, argv, /*start=*/2, flag);
}

uint64_t ParseFlag(int argc, char** argv, const char* flag, uint64_t fallback) {
  const char* text = FlagValue(argc, argv, flag);
  if (text == nullptr) {
    return fallback;
  }
  auto value = ParseCliUint64(text);
  if (!value.ok()) {
    std::fprintf(stderr, "ddr-trace: invalid value '%s' for %s\n", text, flag);
    std::exit(1);
  }
  return *value;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  return HasCliFlag(argc, argv, /*start=*/2, flag);
}

const char* ParseStringFlag(int argc, char** argv, const char* flag,
                            const char* fallback) {
  const char* text = FlagValue(argc, argv, flag);
  return text != nullptr ? text : fallback;
}

// --cache-mb with the shift overflow closed: strtoull alone accepts
// values (up to 2^64-1) whose << 20 silently wraps to a bogus budget, so
// megabyte counts above the shiftable ceiling are rejected like any other
// junk value instead of wrapping.
uint64_t ParseCacheBytesFlag(int argc, char** argv) {
  const uint64_t mb =
      ParseFlag(argc, argv, "--cache-mb", DefaultChunkCacheBytes() >> 20);
  if (mb > (~uint64_t{0} >> 20)) {
    std::fprintf(stderr,
                 "ddr-trace: --cache-mb %llu overflows a byte budget\n",
                 static_cast<unsigned long long>(mb));
    std::exit(1);
  }
  return mb << 20;
}

// Shared read-side flags: --io stream|pread|mmap and --cache-mb N.
RandomAccessFileOptions IoOptionsFromFlags(int argc, char** argv) {
  RandomAccessFileOptions io;
  if (const char* name = FlagValue(argc, argv, "--io")) {
    auto backend = ParseIoBackend(name);
    if (!backend.ok()) {
      std::fprintf(stderr, "ddr-trace: %s\n", backend.status().ToString().c_str());
      std::exit(1);
    }
    io.backend = *backend;
    // An explicit backend request should fail loudly, not silently degrade.
    io.allow_fallback = false;
  }
  return io;
}

TraceReaderOptions ReaderOptionsFromFlags(int argc, char** argv) {
  TraceReaderOptions options;
  options.io = IoOptionsFromFlags(argc, argv);
  // Same default as the corpus commands (DDR_CACHE_MB or 64 MiB), so the
  // usage text holds for every read-side command; --cache-mb 0 disables.
  const uint64_t cache_bytes = ParseCacheBytesFlag(argc, argv);
  if (cache_bytes > 0) {
    options.cache = std::make_shared<ChunkCache>(cache_bytes);
  }
  return options;
}

CorpusReaderOptions CorpusOptionsFromFlags(int argc, char** argv) {
  CorpusReaderOptions options;
  options.io = IoOptionsFromFlags(argc, argv);
  options.cache_bytes = ParseCacheBytesFlag(argc, argv);
  return options;
}

void PrintServeStats(const char* label, const std::string& backend,
                     uint64_t cold_bytes, const ChunkCacheStats& cache) {
  std::printf(
      "%s: io %s, %llu cold bytes; cache %llu/%llu hits (%.1f%% hit rate), "
      "%llu insertions, %llu evictions, %llu bytes resident\n",
      label, backend.c_str(), static_cast<unsigned long long>(cold_bytes),
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.hits + cache.misses),
      100.0 * cache.hit_rate(),
      static_cast<unsigned long long>(cache.insertions),
      static_cast<unsigned long long>(cache.evictions),
      static_cast<unsigned long long>(cache.bytes_in_use));
}

std::vector<std::string> SplitCommaList(const std::string& text) {
  std::vector<std::string> out;
  for (std::string& piece : StrSplit(text, ',')) {
    if (!piece.empty()) {
      out.push_back(std::move(piece));
    }
  }
  return out;
}

int Info(const std::string& path, int argc, char** argv) {
  auto reader_or = TraceReader::Open(path, ReaderOptionsFromFlags(argc, argv));
  if (!reader_or.ok()) {
    std::fprintf(stderr, "ddr-trace: %s\n", reader_or.status().ToString().c_str());
    return 2;
  }
  TraceReader& reader = *reader_or;
  const TraceMetadata& meta = reader.metadata();
  std::printf("file:              %s\n", path.c_str());
  std::printf("file size:         %llu bytes\n",
              static_cast<unsigned long long>(reader.file_size()));
  std::printf("io backend:        %s\n",
              std::string(IoBackendName(reader.io_backend())).c_str());
  std::printf("model:             %s\n", meta.model.c_str());
  std::printf("scenario:          %s\n",
              meta.scenario.empty() ? "(unknown)" : meta.scenario.c_str());
  std::printf("events:            %llu (%llu intercepted, %llu recorded)\n",
              static_cast<unsigned long long>(meta.event_count),
              static_cast<unsigned long long>(meta.intercepted_events),
              static_cast<unsigned long long>(meta.recorded_events));
  std::printf("bytes/event:       %.2f on disk (%llu recorded bytes in-sim)\n",
              meta.event_count == 0
                  ? 0.0
                  : static_cast<double>(reader.file_size()) /
                        static_cast<double>(meta.event_count),
              static_cast<unsigned long long>(meta.recorded_bytes));
  std::printf("overhead:          %lld ns on %lld ns cpu\n",
              static_cast<long long>(meta.overhead_nanos),
              static_cast<long long>(meta.cpu_nanos));
  std::printf("chunks:            %zu (%llu events/chunk)\n",
              reader.chunks().size(),
              static_cast<unsigned long long>(meta.events_per_chunk));
  const CheckpointIndex& index = reader.checkpoints();
  std::printf("checkpoints:       %zu (every %llu events, %s stream)\n",
              index.checkpoints.size(),
              static_cast<unsigned long long>(index.interval),
              index.full_stream ? "full" : "subset");
  for (const ReplayCheckpoint& cp : index.checkpoints) {
    std::printf("  @%-8llu chunk %-4llu seq %-8llu vtime %-10llu fp %016llx\n",
                static_cast<unsigned long long>(cp.event_index),
                static_cast<unsigned long long>(cp.chunk_index),
                static_cast<unsigned long long>(cp.resume_seq),
                static_cast<unsigned long long>(cp.virtual_time),
                static_cast<unsigned long long>(cp.prefix_fingerprint));
  }
  const FailureSnapshot& snapshot = reader.snapshot();
  if (snapshot.has_failure) {
    std::printf("failure:           %s \"%s\" on node %u (fp %016llx)\n",
                std::string(FailureKindName(snapshot.kind)).c_str(),
                snapshot.message.c_str(), snapshot.node,
                static_cast<unsigned long long>(snapshot.failure_fingerprint));
  } else {
    std::printf("failure:           none (clean run)\n");
  }
  std::printf("output:            %llu records, fp %016llx\n",
              static_cast<unsigned long long>(snapshot.output_count),
              static_cast<unsigned long long>(snapshot.output_fingerprint));
  return 0;
}

int Dump(const std::string& path, uint64_t from, uint64_t count, int argc,
         char** argv) {
  auto reader_or = TraceReader::Open(path, ReaderOptionsFromFlags(argc, argv));
  if (!reader_or.ok()) {
    std::fprintf(stderr, "ddr-trace: %s\n", reader_or.status().ToString().c_str());
    return 2;
  }
  TraceReader& reader = *reader_or;
  if (count == 0) {
    count = reader.total_events() > from ? reader.total_events() - from : 0;
  }
  auto events_or = reader.ReadEvents(from, count);
  if (!events_or.ok()) {
    std::fprintf(stderr, "ddr-trace: %s\n", events_or.status().ToString().c_str());
    return 2;
  }
  uint64_t index = from;
  for (const Event& event : *events_or) {
    std::printf("%8llu  %s\n", static_cast<unsigned long long>(index++),
                event.ToString().c_str());
  }
  std::fprintf(stderr, "dump: %zu events, %llu of %llu file bytes read\n",
               events_or->size(),
               static_cast<unsigned long long>(reader.bytes_read()),
               static_cast<unsigned long long>(reader.file_size()));
  return 0;
}

int VerifyFile(const std::string& path, int argc, char** argv) {
  const Status status =
      TraceStore::Verify(path, ReaderOptionsFromFlags(argc, argv));
  if (!status.ok()) {
    std::fprintf(stderr, "ddr-trace: verify FAILED: %s\n",
                 status.ToString().c_str());
    return 2;
  }
  std::printf("%s: OK\n", path.c_str());
  return 0;
}

int ReplayFile(const std::string& path, uint64_t target, bool has_target,
               int argc, char** argv) {
  auto reader_or = TraceReader::Open(path, ReaderOptionsFromFlags(argc, argv));
  if (!reader_or.ok()) {
    std::fprintf(stderr, "ddr-trace: %s\n", reader_or.status().ToString().c_str());
    return 2;
  }
  TraceReader& reader = *reader_or;
  const std::string scenario_name = reader.metadata().scenario;
  auto scenario_or = FindBugScenario(scenario_name);
  if (!scenario_or.ok()) {
    std::fprintf(stderr,
                 "ddr-trace: unknown scenario '%s' in trace metadata; cannot "
                 "rebuild the program\n",
                 scenario_name.c_str());
    return 2;
  }
  const BugScenario& scenario = *scenario_or;
  ReplayTarget replay_target;
  replay_target.make_program = scenario.make_program;
  replay_target.env_options = scenario.env_options;
  Replayer replayer(std::move(replay_target));

  // Direct replay mode from the recorder name in metadata: RCSE logs
  // re-execute their relaxed data plane; everything else replays the log
  // as-is. (Inference-based models need scenario hints; `ddr-trace` only
  // does log-driven replay.)
  const ReplayMode mode =
      reader.metadata().model.find("rcse") != std::string::npos
          ? ReplayMode::kRcse
          : ReplayMode::kPerfect;

  ReplayResult result;
  if (has_target) {
    // Reads go through the reader (and its cache, when --cache-mb is
    // set), so probing several targets against one trace only decodes
    // each chunk once.
    auto partial = replayer.PartialReplayFromTrace(reader, target, mode);
    if (!partial.ok()) {
      std::fprintf(stderr, "ddr-trace: %s\n", partial.status().ToString().c_str());
      return 2;
    }
    result = std::move(*partial);
  } else {
    auto recording_or = reader.ReadRecordedExecution();
    if (!recording_or.ok()) {
      std::fprintf(stderr, "ddr-trace: %s\n",
                   recording_or.status().ToString().c_str());
      return 2;
    }
    result = replayer.Replay(*recording_or, mode);
  }

  std::printf("scenario:            %s\n", scenario_name.c_str());
  std::printf("replayed events:     %zu%s\n", result.trace.size(),
              result.partial ? " (suffix only)" : "");
  if (result.partial) {
    std::printf("fast-forwarded to:   event %llu (%s)\n",
                static_cast<unsigned long long>(result.started_from_event),
                result.fast_forward_verified ? "checkpoint verified"
                                             : "unverified");
  }
  std::printf("divergences:         %llu\n",
              static_cast<unsigned long long>(result.divergences));
  std::printf("failure reproduced:  %s\n",
              result.failure_reproduced ? "yes" : "no");
  return result.failure_reproduced || !reader.snapshot().has_failure ? 0 : 2;
}

int RecordScenario(const std::string& scenario_name, const std::string& path,
                   int argc, char** argv) {
  auto scenario_or = FindBugScenario(scenario_name);
  if (!scenario_or.ok()) {
    std::fprintf(stderr, "ddr-trace: unknown scenario '%s'\n",
                 scenario_name.c_str());
    return 1;
  }

  const std::string model_name =
      ParseStringFlag(argc, argv, "--model", "perfect");
  auto model_or = ParseDeterminismModel(model_name);
  if (!model_or.ok()) {
    std::fprintf(stderr, "ddr-trace: unknown model '%s'\n", model_name.c_str());
    return 1;
  }
  const DeterminismModel model = *model_or;

  ExperimentHarness harness(std::move(*scenario_or));
  const Status prepared = harness.Prepare();
  if (!prepared.ok()) {
    std::fprintf(stderr, "ddr-trace: %s\n", prepared.ToString().c_str());
    return 2;
  }
  const RecordedExecution recording = harness.Record(model);

  TraceWriteOptions options;
  options.events_per_chunk = ParseFlag(argc, argv, "--chunk", 512);
  options.checkpoint_interval = ParseFlag(argc, argv, "--ckpt", 256);
  if (HasFlag(argc, argv, "--delta")) {
    options.chunk_filter = TraceFilter::kVarintDelta;
  }
  const Status saved = harness.SaveRecording(recording, path, options);
  if (!saved.ok()) {
    std::fprintf(stderr, "ddr-trace: %s\n", saved.ToString().c_str());
    return 2;
  }
  std::printf("recorded %s/%s: %zu events -> %s\n", scenario_name.c_str(),
              model_name.c_str(), recording.log.size(), path.c_str());
  return 0;
}

// ------------------------------------------------------------------ corpus

void PrintBatchCells(const BatchReport& report) {
  std::printf("%-28s %-12s %10s %9s %5s %6s  %s\n", "recording", "model",
              "log bytes", "overhead", "DF", "repro", "diagnosed");
  for (const BatchCell& cell : report.cells) {
    std::printf("%-28s %-12s %10llu %8.2fx %5.2f %6s  %s\n",
                cell.recording_name.c_str(), cell.row.model_name.c_str(),
                static_cast<unsigned long long>(cell.row.log_bytes),
                cell.row.overhead_multiplier, cell.row.fidelity,
                cell.row.failure_reproduced ? "yes" : "no",
                cell.row.diagnosed_cause.value_or("-").c_str());
  }
}

int WriteReportIfRequested(const BatchReport& report, int argc, char** argv) {
  const char* report_path = ParseStringFlag(argc, argv, "--report", nullptr);
  if (report_path == nullptr) {
    return 0;
  }
  const Status written = report.WriteJsonLines(report_path);
  if (!written.ok()) {
    std::fprintf(stderr, "ddr-trace: %s\n", written.ToString().c_str());
    return 2;
  }
  std::printf("report: %s (%zu rows)\n", report_path, report.cells.size());
  return 0;
}

int CorpusBuild(const std::string& path, bool append, int argc, char** argv) {
  if (append) {
    // Appending to nothing is a spelled-out build, not an implicit one: a
    // typo'd path should not quietly mint a fresh bundle.
    std::ifstream probe(path, std::ios::binary);
    if (!probe.good()) {
      std::fprintf(stderr,
                   "ddr-trace: corpus append: no bundle at %s (use 'corpus "
                   "build' to create one)\n",
                   path.c_str());
      return 1;
    }
  }
  // Scenario selection: all registered scenarios unless --scenarios names
  // a subset.
  std::vector<BugScenario> scenarios;
  const char* scenario_list = ParseStringFlag(argc, argv, "--scenarios", nullptr);
  if (scenario_list == nullptr) {
    scenarios = AllBugScenarios();
  } else {
    for (const std::string& name : SplitCommaList(scenario_list)) {
      auto scenario = FindBugScenario(name);
      if (!scenario.ok()) {
        std::fprintf(stderr, "ddr-trace: %s\n",
                     scenario.status().ToString().c_str());
        return 1;
      }
      scenarios.push_back(std::move(*scenario));
    }
  }

  BatchOptions options;
  // Default model pair: the fidelity extremes with direct (cheap) replay.
  for (const std::string& name : SplitCommaList(
           ParseStringFlag(argc, argv, "--models", "perfect,value"))) {
    auto model = ParseDeterminismModel(name);
    if (!model.ok()) {
      std::fprintf(stderr, "ddr-trace: %s\n", model.status().ToString().c_str());
      return 1;
    }
    options.models.push_back(*model);
  }
  options.threads = static_cast<int>(ParseFlag(argc, argv, "--threads", 1));
  options.corpus_path = path;
  options.resume = append;
  if (append) {
    // --io selects the backend used to read the existing bundle;
    // --cache-mb is validated for consistency with the other corpus
    // commands (append decodes nothing, so it has no cache to size).
    options.resume_io = IoOptionsFromFlags(argc, argv);
    ParseCacheBytesFlag(argc, argv);
    const bool in_place = HasFlag(argc, argv, "--in-place");
    const bool rewrite = HasFlag(argc, argv, "--rewrite");
    if (in_place && rewrite) {
      std::fprintf(stderr,
                   "ddr-trace: --in-place and --rewrite are exclusive\n");
      return 1;
    }
    options.resume_mode =
        rewrite ? CorpusAppendMode::kRewrite : CorpusAppendMode::kInPlace;
  }
  options.trace_options.events_per_chunk = ParseFlag(argc, argv, "--chunk", 512);
  options.trace_options.checkpoint_interval = ParseFlag(argc, argv, "--ckpt", 256);
  if (HasFlag(argc, argv, "--delta")) {
    options.trace_options.chunk_filter = TraceFilter::kVarintDelta;
  }

  auto report = BatchRunner(std::move(scenarios), options).Run();
  if (!report.ok()) {
    std::fprintf(stderr, "ddr-trace: %s\n", report.status().ToString().c_str());
    return 2;
  }
  PrintBatchCells(*report);
  std::printf("%s %s: %zu recordings, %llu bytes written%s\n",
              append ? "appended to" : "built", path.c_str(),
              report->cells.size(),
              static_cast<unsigned long long>(report->corpus_bytes_written),
              append && report->cells.empty() ? " (nothing missing)" : "");
  return WriteReportIfRequested(*report, argc, argv);
}

int CorpusMerge(const std::string& output, int argc, char** argv) {
  // Positional arguments after `corpus merge <out>`: every token that is
  // not a flag (or a flag's value) is an input bundle path — an input
  // after `--io mmap` still merges (RequireKnownFlags already rejected
  // anything unrecognized, so a typo can never be silently dropped).
  const std::vector<std::string> inputs =
      PositionalArgs(argc, argv, /*start=*/4, kCorpusMergeFlags);
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "ddr-trace: corpus merge needs at least one input bundle\n");
    PrintUsage();
    return 1;
  }
  MergeCorporaOptions options;
  options.io = IoOptionsFromFlags(argc, argv);
  if (const char* policy = FlagValue(argc, argv, "--on-collision")) {
    auto parsed = ParseNameCollisionPolicy(policy);
    if (!parsed.ok()) {
      std::fprintf(stderr, "ddr-trace: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
    options.on_collision = *parsed;
  }
  auto stats = MergeCorpora(inputs, output, options);
  if (!stats.ok()) {
    std::fprintf(stderr, "ddr-trace: %s\n", stats.status().ToString().c_str());
    return 2;
  }
  std::printf(
      "merged %zu bundle(s) -> %s: %zu entries (%zu skipped, %zu renamed, "
      "on-collision %s)\n",
      inputs.size(), output.c_str(), stats->added, stats->skipped,
      stats->renamed,
      std::string(NameCollisionPolicyName(options.on_collision)).c_str());
  return 0;
}

int CorpusCompact(const std::string& path, int argc, char** argv) {
  // Without --drop, compact is the journal squash: rewrite the live
  // entries into canonical single-shot form, reclaiming dead bytes.
  std::vector<std::string> drop;
  if (const char* drop_list = ParseStringFlag(argc, argv, "--drop", nullptr)) {
    drop = SplitCommaList(drop_list);
    if (drop.empty()) {
      std::fprintf(stderr, "ddr-trace: --drop names nothing to drop\n");
      return 1;
    }
  }
  auto stats = CompactCorpus(path, drop, IoOptionsFromFlags(argc, argv));
  if (!stats.ok()) {
    std::fprintf(stderr, "ddr-trace: %s\n", stats.status().ToString().c_str());
    return 2;
  }
  std::printf("compacted %s: dropped %zu, kept %zu entries\n", path.c_str(),
              stats->dropped, stats->added);
  return 0;
}

int CorpusInfo(const std::string& path, int argc, char** argv) {
  auto corpus = CorpusReader::Open(path, CorpusOptionsFromFlags(argc, argv));
  if (!corpus.ok()) {
    std::fprintf(stderr, "ddr-trace: %s\n", corpus.status().ToString().c_str());
    return 2;
  }
  std::printf("corpus:            %s\n", path.c_str());
  std::printf("file size:         %llu bytes\n",
              static_cast<unsigned long long>(corpus->file_size()));
  std::printf("io backend:        %s\n",
              std::string(IoBackendName(corpus->io_backend())).c_str());
  std::printf("layout:            %s\n",
              !corpus->journaled() ? "single-shot (v1)"
              : corpus->format_version() == kCorpusFormatVersionDelta
                  ? "journaled (v3, delta indexes)"
                  : "journaled (v2, full indexes)");
  std::printf("generations:       %u\n", corpus->generation());
  std::printf("dead bytes:        %llu (%.1f%% of file%s)\n",
              static_cast<unsigned long long>(corpus->dead_bytes()),
              corpus->file_size() == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(corpus->dead_bytes()) /
                        static_cast<double>(corpus->file_size()),
              corpus->dead_bytes() != 0 ? "; run 'corpus compact' to reclaim"
                                        : "");
  // The flock probe: an in-place appender holds the writer lock right
  // now. Purely informational — readers never block on the writer.
  const bool writer_active = CorpusWriterActive(path).value_or(false);
  std::printf("writer:            %s\n",
              writer_active ? "active (in-place append holds the flock)"
                            : "none");
  std::printf("entries:           %zu\n", corpus->entries().size());
  std::printf("%-28s %-14s %-12s %10s %10s\n", "name", "scenario", "model",
              "events", "bytes");
  for (const CorpusEntry& entry : corpus->entries()) {
    std::printf("%-28s %-14s %-12s %10llu %10llu\n", entry.name.c_str(),
                entry.scenario.c_str(), entry.model.c_str(),
                static_cast<unsigned long long>(entry.event_count),
                static_cast<unsigned long long>(entry.length));
  }
  return 0;
}

int CorpusVerify(const std::string& path, int argc, char** argv) {
  auto corpus = CorpusReader::Open(path, CorpusOptionsFromFlags(argc, argv));
  if (!corpus.ok()) {
    std::fprintf(stderr, "ddr-trace: %s\n", corpus.status().ToString().c_str());
    return 2;
  }
  const Status verified = corpus->VerifyAll();
  if (!verified.ok()) {
    std::fprintf(stderr, "ddr-trace: verify FAILED: %s\n",
                 verified.ToString().c_str());
    return 2;
  }
  std::printf("%s: OK (%zu entries)\n", path.c_str(), corpus->entries().size());
  PrintServeStats("verify", std::string(IoBackendName(corpus->io_backend())),
                  corpus->bytes_read(), corpus->cache_stats());
  return 0;
}

int CorpusReplay(const std::string& path, int argc, char** argv) {
  ReplayCorpusOptions options;
  options.threads = static_cast<int>(ParseFlag(argc, argv, "--threads", 1));
  options.reader = CorpusOptionsFromFlags(argc, argv);
  auto report = ReplayCorpus(path, AllBugScenarios(), options);
  if (!report.ok()) {
    std::fprintf(stderr, "ddr-trace: %s\n", report.status().ToString().c_str());
    return 2;
  }
  PrintBatchCells(*report);
  std::printf("replayed %zu recordings from %s\n", report->cells.size(),
              path.c_str());
  PrintServeStats("serve", report->io_backend, report->corpus_bytes_read,
                  report->cache_stats);
  return WriteReportIfRequested(*report, argc, argv);
}

// ------------------------------------------------------------ serve/query

// SIGTERM/SIGINT flip this flag; the serve loop polls it. Everything
// heavier (the actual drain) happens on the main thread afterwards, so
// the handler stays async-signal-safe.
volatile std::sig_atomic_t g_serve_stop = 0;

void HandleServeSignal(int) { g_serve_stop = 1; }

int Serve(const std::string& path, int argc, char** argv) {
  CorpusServerOptions options;
  options.reader = CorpusOptionsFromFlags(argc, argv);
  if (const char* socket = ParseStringFlag(argc, argv, "--socket", nullptr)) {
    options.socket_path = socket;
  }
  if (FlagValue(argc, argv, "--port") != nullptr) {
    const uint64_t port = ParseFlag(argc, argv, "--port", 0);
    if (port > 65535) {
      std::fprintf(stderr, "ddr-trace: --port %llu is not a TCP port\n",
                   static_cast<unsigned long long>(port));
      return 1;
    }
    options.tcp_port = static_cast<int>(port);
  }
  if (options.socket_path.empty() == (options.tcp_port < 0)) {
    std::fprintf(stderr,
                 "ddr-trace: serve needs exactly one endpoint: --socket "
                 "<path> or --port <n>\n");
    PrintUsage();
    return 1;
  }
  options.workers = static_cast<int>(ParseFlag(argc, argv, "--threads", 4));
  options.queue_capacity = ParseFlag(argc, argv, "--queue", 32);
  options.watch_interval_ms =
      static_cast<int>(ParseFlag(argc, argv, "--watch-ms", 0));

  auto server = CorpusServer::Start(path, options);
  if (!server.ok()) {
    std::fprintf(stderr, "ddr-trace: %s\n", server.status().ToString().c_str());
    return 2;
  }
  if (!options.socket_path.empty()) {
    std::printf("serving %s at unix socket %s (%d workers, queue %zu%s)\n",
                path.c_str(), (*server)->socket_path().c_str(),
                options.workers, options.queue_capacity,
                options.watch_interval_ms > 0 ? ", watching for appends" : "");
  } else {
    std::printf("serving %s at 127.0.0.1:%u (%d workers, queue %zu%s)\n",
                path.c_str(), (*server)->tcp_port(), options.workers,
                options.queue_capacity,
                options.watch_interval_ms > 0 ? ", watching for appends" : "");
  }
  std::fflush(stdout);

  std::signal(SIGTERM, HandleServeSignal);
  std::signal(SIGINT, HandleServeSignal);
  // running() goes false when a client sends `shutdown`; the flag when a
  // signal lands. Either way the drain below finishes admitted work first.
  while (g_serve_stop == 0 && (*server)->running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  (*server)->RequestStop();
  (*server)->Wait();

  const ServeStats stats = (*server)->Snapshot();
  std::printf(
      "drained: %llu requests from %llu clients, %llu bytes served, "
      "%llu overloads, %llu refreshes (%llu generations picked up)\n",
      static_cast<unsigned long long>(stats.requests_total),
      static_cast<unsigned long long>(stats.clients_total),
      static_cast<unsigned long long>(stats.bytes_served),
      static_cast<unsigned long long>(stats.overload_rejections),
      static_cast<unsigned long long>(stats.refreshes),
      static_cast<unsigned long long>(stats.generations_picked_up));
  PrintServeStats("serve", "server", stats.corpus_bytes_read, stats.cache);
  return 0;
}

void PrintServeCell(const BatchCell& cell) {
  BatchReport report;
  report.cells.push_back(cell);
  PrintBatchCells(report);
}

// Query exit codes: 0 ok, 1 usage, 2 failure, 3 deadline exceeded — a
// script can tell "the server answered with an error" apart from "the
// server did not answer in time".
int QueryFailure(const Status& status) {
  std::fprintf(stderr, "ddr-trace: %s\n", status.ToString().c_str());
  return status.code() == StatusCode::kDeadlineExceeded ? 3 : 2;
}

int Query(int argc, char** argv) {
  auto command = ParseRpcCommand(argv[2]);
  if (!command.ok()) {
    std::fprintf(stderr, "ddr-trace: %s\n",
                 command.status().ToString().c_str());
    PrintUsage();
    return 1;
  }
  // Optional positional operand after the command: the entry name for
  // verify/replay.
  std::string name;
  if (argc > 3 && std::strncmp(argv[3], "--", 2) != 0) {
    name = argv[3];
  }
  const char* socket = ParseStringFlag(argc, argv, "--socket", nullptr);
  const char* port_text = FlagValue(argc, argv, "--port");
  if ((socket != nullptr) == (port_text != nullptr)) {
    std::fprintf(stderr,
                 "ddr-trace: query needs exactly one endpoint: --socket "
                 "<path> or --host H --port <n>\n");
    PrintUsage();
    return 1;
  }
  uint64_t port = 0;
  if (port_text != nullptr) {
    port = ParseFlag(argc, argv, "--port", 0);
    if (port == 0 || port > 65535) {
      std::fprintf(stderr, "ddr-trace: --port %llu is not a TCP port\n",
                   static_cast<unsigned long long>(port));
      return 1;
    }
  }
  CorpusClientOptions client_options;
  client_options.timeout_ms =
      static_cast<int>(ParseFlag(argc, argv, "--timeout-ms", 0));
  client_options.max_retries =
      static_cast<int>(ParseFlag(argc, argv, "--retries", 0));
  client_options.backoff_initial_ms = static_cast<int>(
      ParseFlag(argc, argv, "--backoff-ms",
                static_cast<uint64_t>(client_options.backoff_initial_ms)));
  auto client = socket != nullptr
                    ? CorpusClient::ConnectUnixSocket(socket, client_options)
                    : CorpusClient::ConnectTcpSocket(
                          ParseStringFlag(argc, argv, "--host", "127.0.0.1"),
                          static_cast<uint16_t>(port), client_options);
  if (!client.ok()) {
    return QueryFailure(client.status());
  }

  switch (*command) {
    case RpcCommand::kInfo: {
      auto info = client->Info();
      if (!info.ok()) {
        return QueryFailure(info.status());
      }
      std::printf("corpus:            %s\n", info->path.c_str());
      std::printf("file size:         %llu bytes\n",
                  static_cast<unsigned long long>(info->file_size));
      std::printf("io backend:        %s\n", info->io_backend.c_str());
      std::printf("layout:            %s\n",
                  !info->journaled ? "single-shot (v1)"
                  : info->format_version == kCorpusFormatVersionDelta
                      ? "journaled (v3, delta indexes)"
                      : "journaled (v2, full indexes)");
      std::printf("generations:       %u\n", info->generation);
      std::printf("dead bytes:        %llu\n",
                  static_cast<unsigned long long>(info->dead_bytes));
      std::printf("writer:            %s\n",
                  info->writer_active
                      ? "active (in-place append holds the flock)"
                      : "none");
      std::printf("entries:           %llu\n",
                  static_cast<unsigned long long>(info->entry_count));
      return 0;
    }
    case RpcCommand::kList: {
      auto entries = client->List();
      if (!entries.ok()) {
        return QueryFailure(entries.status());
      }
      std::printf("%-28s %-14s %-12s %10s %10s\n", "name", "scenario",
                  "model", "events", "bytes");
      for (const ServeEntry& entry : *entries) {
        std::printf("%-28s %-14s %-12s %10llu %10llu\n", entry.name.c_str(),
                    entry.scenario.c_str(), entry.model.c_str(),
                    static_cast<unsigned long long>(entry.event_count),
                    static_cast<unsigned long long>(entry.length));
      }
      return 0;
    }
    case RpcCommand::kVerify: {
      auto verified = client->Verify(name);
      if (!verified.ok()) {
        std::fprintf(stderr, "ddr-trace: verify FAILED: %s\n",
                     verified.status().ToString().c_str());
        return verified.status().code() == StatusCode::kDeadlineExceeded ? 3
                                                                         : 2;
      }
      std::printf("%s: OK (%llu %s verified)\n",
                  name.empty() ? "bundle" : name.c_str(),
                  static_cast<unsigned long long>(*verified),
                  *verified == 1 ? "entry" : "entries");
      return 0;
    }
    case RpcCommand::kReplay: {
      if (name.empty()) {
        std::fprintf(stderr, "ddr-trace: query replay needs an entry name\n");
        PrintUsage();
        return 1;
      }
      auto cell =
          client->Replay(name, ParseStringFlag(argc, argv, "--model", ""));
      if (!cell.ok()) {
        return QueryFailure(cell.status());
      }
      PrintServeCell(*cell);
      return 0;
    }
    case RpcCommand::kStats: {
      auto stats = client->Stats();
      if (!stats.ok()) {
        return QueryFailure(stats.status());
      }
      std::printf("requests:          %llu",
                  static_cast<unsigned long long>(stats->requests_total));
      for (size_t c = 0; c < kRpcCommandCount; ++c) {
        if (stats->requests_by_command[c] != 0) {
          std::printf(" %s=%llu",
                      std::string(RpcCommandName(static_cast<RpcCommand>(c)))
                          .c_str(),
                      static_cast<unsigned long long>(
                          stats->requests_by_command[c]));
        }
      }
      std::printf("\n");
      std::printf("bytes served:      %llu\n",
                  static_cast<unsigned long long>(stats->bytes_served));
      std::printf("overloads:         %llu\n",
                  static_cast<unsigned long long>(stats->overload_rejections));
      std::printf("refreshes:         %llu (%llu generations picked up)\n",
                  static_cast<unsigned long long>(stats->refreshes),
                  static_cast<unsigned long long>(
                      stats->generations_picked_up));
      std::printf("clients:           %llu total, %llu active\n",
                  static_cast<unsigned long long>(stats->clients_total),
                  static_cast<unsigned long long>(stats->clients_active));
      std::printf("generation:        %u (%llu entries)\n", stats->generation,
                  static_cast<unsigned long long>(stats->entry_count));
      PrintServeStats("serve", "server", stats->corpus_bytes_read,
                      stats->cache);
      return 0;
    }
    case RpcCommand::kRefresh: {
      auto refresh = client->Refresh();
      if (!refresh.ok()) {
        return QueryFailure(refresh.status());
      }
      std::printf("refresh: generation %u -> %u, entries %llu -> %llu (%s)\n",
                  refresh->generation_before, refresh->generation_after,
                  static_cast<unsigned long long>(refresh->entries_before),
                  static_cast<unsigned long long>(refresh->entries_after),
                  refresh->picked_up ? "picked up new data" : "no change");
      return 0;
    }
    case RpcCommand::kShutdown: {
      const Status status = client->Shutdown();
      if (!status.ok()) {
        return QueryFailure(status);
      }
      std::printf("shutdown acknowledged; server draining\n");
      return 0;
    }
  }
  return 1;  // unreachable: the switch covers every command
}

// ------------------------------------------------------------------ sched

// --format for the sched subcommands: "text" (default) or "json".
bool SchedWantsJson(int argc, char** argv, bool* json) {
  const char* format = ParseStringFlag(argc, argv, "--format", "text");
  if (std::strcmp(format, "json") == 0) {
    *json = true;
    return true;
  }
  if (std::strcmp(format, "text") == 0) {
    *json = false;
    return true;
  }
  std::fprintf(stderr, "ddr-trace: unknown --format '%s' (text|json)\n",
               format);
  return false;
}

std::string SchedFindingsJson(const std::vector<sched::SchedFinding>& all) {
  std::string out = "[";
  for (size_t i = 0; i < all.size(); ++i) {
    if (i > 0) out += ",";
    out += StrPrintf(
        "{\"kind\":\"%s\",\"message\":\"%s\",\"schedule\":\"%s\"}",
        sched::FindingKindName(all[i].kind),
        JsonEscape(all[i].message).c_str(),
        JsonEscape(all[i].schedule).c_str());
  }
  out += "]";
  return out;
}

int SchedList(int argc, char** argv) {
  bool json = false;
  if (!SchedWantsJson(argc, argv, &json)) return 1;
  for (const sched::SchedModel& model : sched::AllSchedModels()) {
    if (json) {
      std::printf(
          "{\"model\":\"%s\",\"expect\":\"%s\",\"description\":\"%s\"}\n",
          model.name, sched::ExpectName(model.expect),
          JsonEscape(model.description).c_str());
    } else {
      std::printf("%-20s %-16s %s\n", model.name,
                  sched::ExpectName(model.expect), model.description);
    }
  }
  return 0;
}

int SchedExplore(int argc, char** argv) {
  bool json = false;
  if (!SchedWantsJson(argc, argv, &json)) return 1;
  const std::vector<std::string> positionals =
      PositionalArgs(argc, argv, /*start=*/2, kSchedExploreFlags);
  // positionals[0] is "explore"; the rest are model names.
  std::vector<const sched::SchedModel*> models;
  for (size_t i = 1; i < positionals.size(); ++i) {
    const sched::SchedModel* model = sched::FindSchedModel(positionals[i]);
    if (model == nullptr) {
      std::fprintf(stderr,
                   "ddr-trace: unknown sched model '%s' (see: ddr-trace "
                   "sched list)\n",
                   positionals[i].c_str());
      return 1;
    }
    models.push_back(model);
  }
  if (models.empty()) {
    // Default set: the clean subsystem models — the deadlock-free /
    // lost-wakeup-free property CI asserts on every push.
    for (const sched::SchedModel& model : sched::AllSchedModels()) {
      if (model.expect == sched::SchedModel::Expect::kClean) {
        models.push_back(&model);
      }
    }
  }
  const uint64_t budget = ParseFlag(argc, argv, "--budget", 256);
  sched::ExploreOptions options;
  options.random_budget = std::max<uint64_t>(budget / 4, 1);
  options.dfs_budget = budget > options.random_budget
                           ? budget - options.random_budget
                           : 1;
  options.preempt_bound =
      static_cast<int>(ParseFlag(argc, argv, "--preempt", 2));
  options.seed = ParseFlag(argc, argv, "--seed", 1);

  bool any_findings = false;
  for (const sched::SchedModel* model : models) {
    const sched::ExploreReport report = sched::Explore(model->body, options);
    if (!report.findings.empty()) any_findings = true;
    if (json) {
      std::printf(
          "{\"model\":\"%s\",\"expect\":\"%s\",\"runs\":%llu,"
          "\"dfs_runs\":%llu,\"random_runs\":%llu,\"dfs_exhausted\":%s,"
          "\"preempt_bound\":%d,\"findings\":%s}\n",
          model->name, sched::ExpectName(model->expect),
          static_cast<unsigned long long>(report.runs),
          static_cast<unsigned long long>(report.dfs_runs),
          static_cast<unsigned long long>(report.random_runs),
          report.dfs_exhausted ? "true" : "false", options.preempt_bound,
          SchedFindingsJson(report.findings).c_str());
      continue;
    }
    std::printf("sched explore: %s: %llu runs (%llu dfs%s, %llu random), "
                "%zu finding%s\n",
                model->name, static_cast<unsigned long long>(report.runs),
                static_cast<unsigned long long>(report.dfs_runs),
                report.dfs_exhausted ? " [space exhausted]" : "",
                static_cast<unsigned long long>(report.random_runs),
                report.findings.size(),
                report.findings.size() == 1 ? "" : "s");
    for (const sched::SchedFinding& finding : report.findings) {
      std::printf("  [%s] %s\n", sched::FindingKindName(finding.kind),
                  finding.message.c_str());
      // Unindented so CI scripts can lift the schedule with a plain sed.
      std::printf("DDR_SCHED=%s\n", finding.schedule.c_str());
      std::printf("  replay: ddr-trace sched replay %s --sched '%s'\n",
                  model->name, finding.schedule.c_str());
    }
  }
  return any_findings ? 2 : 0;
}

int SchedReplay(int argc, char** argv) {
  bool json = false;
  if (!SchedWantsJson(argc, argv, &json)) return 1;
  const std::vector<std::string> positionals =
      PositionalArgs(argc, argv, /*start=*/2, kSchedReplayFlags);
  const char* schedule = FlagValue(argc, argv, "--sched");
  if (positionals.size() != 2 || schedule == nullptr) {
    std::fprintf(stderr,
                 "ddr-trace: sched replay needs a model and --sched "
                 "<string>\n");
    PrintUsage();
    return 1;
  }
  const sched::SchedModel* model = sched::FindSchedModel(positionals[1]);
  if (model == nullptr) {
    std::fprintf(stderr,
                 "ddr-trace: unknown sched model '%s' (see: ddr-trace sched "
                 "list)\n",
                 positionals[1].c_str());
    return 1;
  }
  const Result<sched::RunResult> run =
      sched::RunWithSchedule(model->body, schedule);
  if (!run.ok()) {
    std::fprintf(stderr, "ddr-trace: sched replay failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  if (json) {
    std::string events = "[";
    for (size_t i = 0; i < run->events.size(); ++i) {
      if (i > 0) events += ",";
      events += "\"" + JsonEscape(run->events[i]) + "\"";
    }
    events += "]";
    std::printf(
        "{\"model\":\"%s\",\"schedule\":\"%s\",\"decisions\":%zu,"
        "\"preemptions\":%d,\"events\":%s,\"findings\":%s}\n",
        model->name, JsonEscape(run->schedule).c_str(),
        run->decisions.size(), run->preemptions, events.c_str(),
        SchedFindingsJson(run->findings).c_str());
  } else {
    std::printf("sched replay: %s with %s: %zu events, %zu decisions, "
                "%d preemption%s, %zu finding%s\n",
                model->name, run->schedule.c_str(), run->events.size(),
                run->decisions.size(), run->preemptions,
                run->preemptions == 1 ? "" : "s", run->findings.size(),
                run->findings.size() == 1 ? "" : "s");
    for (const std::string& event : run->events) {
      std::printf("  %s\n", event.c_str());
    }
    for (const sched::SchedFinding& finding : run->findings) {
      std::printf("  [%s] %s\n", sched::FindingKindName(finding.kind),
                  finding.message.c_str());
      std::printf("DDR_SCHED=%s\n", finding.schedule.c_str());
    }
  }
  return run->findings.empty() ? 0 : 2;
}

int SchedMain(int argc, char** argv) {
  const std::string subcommand = argv[2];
  if (subcommand == "list") {
    RequireKnownFlags(argc, argv, kSchedListFlags);
    return SchedList(argc, argv);
  }
  if (subcommand == "explore") {
    RequireKnownFlags(argc, argv, kSchedExploreFlags);
    return SchedExplore(argc, argv);
  }
  if (subcommand == "replay") {
    RequireKnownFlags(argc, argv, kSchedReplayFlags);
    return SchedReplay(argc, argv);
  }
  PrintUsage();
  return 1;
}

int CorpusMain(int argc, char** argv) {
  if (argc < 4) {
    PrintUsage();
    return 1;
  }
  const std::string subcommand = argv[2];
  const std::string path = argv[3];
  if (subcommand == "build") {
    RequireKnownFlags(argc, argv, kCorpusBuildFlags);
    return CorpusBuild(path, /*append=*/false, argc, argv);
  }
  if (subcommand == "append") {
    RequireKnownFlags(argc, argv, kCorpusAppendFlags);
    return CorpusBuild(path, /*append=*/true, argc, argv);
  }
  if (subcommand == "merge") {
    RequireKnownFlags(argc, argv, kCorpusMergeFlags);
    return CorpusMerge(path, argc, argv);
  }
  if (subcommand == "compact") {
    RequireKnownFlags(argc, argv, kCorpusCompactFlags);
    return CorpusCompact(path, argc, argv);
  }
  if (subcommand == "info") {
    RequireKnownFlags(argc, argv, kReadFlags);
    return CorpusInfo(path, argc, argv);
  }
  if (subcommand == "verify") {
    RequireKnownFlags(argc, argv, kReadFlags);
    return CorpusVerify(path, argc, argv);
  }
  if (subcommand == "replay") {
    RequireKnownFlags(argc, argv, kCorpusReplayFlags);
    return CorpusReplay(path, argc, argv);
  }
  PrintUsage();
  return 1;
}

int Main(int argc, char** argv) {
  if (argc < 3) {
    PrintUsage();
    return 1;
  }
  const std::string command = argv[1];
  if (command == "corpus") {
    return CorpusMain(argc, argv);
  }
  if (command == "query") {
    RequireKnownFlags(argc, argv, kQueryFlags);
    return Query(argc, argv);
  }
  if (command == "sched") {
    return SchedMain(argc, argv);
  }
  const std::string path = argv[2];
  if (command == "serve") {
    RequireKnownFlags(argc, argv, kServeFlags);
    return Serve(path, argc, argv);
  }
  if (command == "info") {
    RequireKnownFlags(argc, argv, kReadFlags);
    return Info(path, argc, argv);
  }
  if (command == "dump") {
    RequireKnownFlags(argc, argv, kDumpFlags);
    return Dump(path, ParseFlag(argc, argv, "--from", 0),
                ParseFlag(argc, argv, "--count", 0), argc, argv);
  }
  if (command == "verify") {
    RequireKnownFlags(argc, argv, kReadFlags);
    return VerifyFile(path, argc, argv);
  }
  if (command == "replay") {
    RequireKnownFlags(argc, argv, kReplayFlags);
    return ReplayFile(path, ParseFlag(argc, argv, "--target", 0),
                      HasFlag(argc, argv, "--target"), argc, argv);
  }
  if (command == "record") {
    if (argc < 4) {
      PrintUsage();
      return 1;
    }
    RequireKnownFlags(argc, argv, kRecordFlags);
    return RecordScenario(/*scenario_name=*/argv[2], /*path=*/argv[3], argc,
                          argv);
  }
  PrintUsage();
  return 1;
}

}  // namespace
}  // namespace ddr

int main(int argc, char** argv) { return ddr::Main(argc, argv); }
