// ddr-trace: inspect, verify, and replay DDRT trace files.
//
//   ddr-trace info <file>                     header, metadata, chunk +
//                                             checkpoint tables, sizes
//   ddr-trace dump <file> [--from N] [--count M]
//                                             print events; reads only the
//                                             chunks covering the range
//   ddr-trace verify <file>                   full structural/CRC check
//   ddr-trace replay <file> [--target N]      rebuild the scenario named in
//                                             metadata and replay (from the
//                                             nearest checkpoint <= N when
//                                             --target is given)
//   ddr-trace record <scenario> <file> [--model NAME] [--chunk N] [--ckpt N]
//                                             run a bundled bug scenario and
//                                             save its recording
//
// Exit status: 0 on success/OK, 1 on usage error, 2 on a failed
// verification or replay.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "src/apps/scenarios.h"
#include "src/trace/trace_reader.h"
#include "src/trace/trace_store.h"
#include "src/util/string_util.h"

namespace ddr {
namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: ddr-trace <command> <file> [options]\n"
               "  info   <file>                   show metadata and layout\n"
               "  dump   <file> [--from N] [--count M]   print events\n"
               "  verify <file>                   verify CRCs and structure\n"
               "  replay <file> [--target N]      replay the recording\n"
               "  record <scenario> <file> [--model NAME] [--chunk N] "
               "[--ckpt N]\n"
               "         scenarios: sum msgdrop overflow hypertable;\n"
               "         models: perfect value output output-heavy failure "
               "debug-rcse\n");
}

// The scenario registry `replay` uses to rebuild the program a trace was
// recorded from.
std::map<std::string, BugScenario> ScenarioRegistry() {
  std::map<std::string, BugScenario> registry;
  for (BugScenario scenario :
       {MakeSumScenario(), MakeMsgDropScenario(), MakeOverflowScenario(),
        MakeHypertableScenario()}) {
    std::string name = scenario.name;
    registry.emplace(std::move(name), std::move(scenario));
  }
  return registry;
}

uint64_t ParseFlag(int argc, char** argv, const char* flag, uint64_t fallback) {
  for (int i = 3; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      char* end = nullptr;
      errno = 0;
      const uint64_t value = std::strtoull(argv[i + 1], &end, 10);
      if (end == argv[i + 1] || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr, "ddr-trace: invalid value '%s' for %s\n",
                     argv[i + 1], flag);
        std::exit(1);
      }
      return value;
    }
  }
  return fallback;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return true;
    }
  }
  return false;
}

int Info(const std::string& path) {
  auto reader_or = TraceReader::Open(path);
  if (!reader_or.ok()) {
    std::fprintf(stderr, "ddr-trace: %s\n", reader_or.status().ToString().c_str());
    return 2;
  }
  TraceReader& reader = *reader_or;
  const TraceMetadata& meta = reader.metadata();
  std::printf("file:              %s\n", path.c_str());
  std::printf("file size:         %llu bytes\n",
              static_cast<unsigned long long>(reader.file_size()));
  std::printf("model:             %s\n", meta.model.c_str());
  std::printf("scenario:          %s\n",
              meta.scenario.empty() ? "(unknown)" : meta.scenario.c_str());
  std::printf("events:            %llu (%llu intercepted, %llu recorded)\n",
              static_cast<unsigned long long>(meta.event_count),
              static_cast<unsigned long long>(meta.intercepted_events),
              static_cast<unsigned long long>(meta.recorded_events));
  std::printf("bytes/event:       %.2f on disk (%llu recorded bytes in-sim)\n",
              meta.event_count == 0
                  ? 0.0
                  : static_cast<double>(reader.file_size()) /
                        static_cast<double>(meta.event_count),
              static_cast<unsigned long long>(meta.recorded_bytes));
  std::printf("overhead:          %lld ns on %lld ns cpu\n",
              static_cast<long long>(meta.overhead_nanos),
              static_cast<long long>(meta.cpu_nanos));
  std::printf("chunks:            %zu (%llu events/chunk)\n",
              reader.chunks().size(),
              static_cast<unsigned long long>(meta.events_per_chunk));
  const CheckpointIndex& index = reader.checkpoints();
  std::printf("checkpoints:       %zu (every %llu events, %s stream)\n",
              index.checkpoints.size(),
              static_cast<unsigned long long>(index.interval),
              index.full_stream ? "full" : "subset");
  for (const ReplayCheckpoint& cp : index.checkpoints) {
    std::printf("  @%-8llu chunk %-4llu seq %-8llu vtime %-10llu fp %016llx\n",
                static_cast<unsigned long long>(cp.event_index),
                static_cast<unsigned long long>(cp.chunk_index),
                static_cast<unsigned long long>(cp.resume_seq),
                static_cast<unsigned long long>(cp.virtual_time),
                static_cast<unsigned long long>(cp.prefix_fingerprint));
  }
  const FailureSnapshot& snapshot = reader.snapshot();
  if (snapshot.has_failure) {
    std::printf("failure:           %s \"%s\" on node %u (fp %016llx)\n",
                std::string(FailureKindName(snapshot.kind)).c_str(),
                snapshot.message.c_str(), snapshot.node,
                static_cast<unsigned long long>(snapshot.failure_fingerprint));
  } else {
    std::printf("failure:           none (clean run)\n");
  }
  std::printf("output:            %llu records, fp %016llx\n",
              static_cast<unsigned long long>(snapshot.output_count),
              static_cast<unsigned long long>(snapshot.output_fingerprint));
  return 0;
}

int Dump(const std::string& path, uint64_t from, uint64_t count) {
  auto reader_or = TraceReader::Open(path);
  if (!reader_or.ok()) {
    std::fprintf(stderr, "ddr-trace: %s\n", reader_or.status().ToString().c_str());
    return 2;
  }
  TraceReader& reader = *reader_or;
  if (count == 0) {
    count = reader.total_events() > from ? reader.total_events() - from : 0;
  }
  auto events_or = reader.ReadEvents(from, count);
  if (!events_or.ok()) {
    std::fprintf(stderr, "ddr-trace: %s\n", events_or.status().ToString().c_str());
    return 2;
  }
  uint64_t index = from;
  for (const Event& event : *events_or) {
    std::printf("%8llu  %s\n", static_cast<unsigned long long>(index++),
                event.ToString().c_str());
  }
  std::fprintf(stderr, "dump: %zu events, %llu of %llu file bytes read\n",
               events_or->size(),
               static_cast<unsigned long long>(reader.bytes_read()),
               static_cast<unsigned long long>(reader.file_size()));
  return 0;
}

int VerifyFile(const std::string& path) {
  const Status status = TraceStore::Verify(path);
  if (!status.ok()) {
    std::fprintf(stderr, "ddr-trace: verify FAILED: %s\n",
                 status.ToString().c_str());
    return 2;
  }
  std::printf("%s: OK\n", path.c_str());
  return 0;
}

int ReplayFile(const std::string& path, uint64_t target, bool has_target) {
  auto reader_or = TraceReader::Open(path);
  if (!reader_or.ok()) {
    std::fprintf(stderr, "ddr-trace: %s\n", reader_or.status().ToString().c_str());
    return 2;
  }
  TraceReader& reader = *reader_or;
  const std::string scenario_name = reader.metadata().scenario;
  auto registry = ScenarioRegistry();
  auto it = registry.find(scenario_name);
  if (it == registry.end()) {
    std::fprintf(stderr,
                 "ddr-trace: unknown scenario '%s' in trace metadata; cannot "
                 "rebuild the program\n",
                 scenario_name.c_str());
    return 2;
  }
  auto recording_or = reader.ReadRecordedExecution();
  if (!recording_or.ok()) {
    std::fprintf(stderr, "ddr-trace: %s\n",
                 recording_or.status().ToString().c_str());
    return 2;
  }

  const BugScenario& scenario = it->second;
  ReplayTarget replay_target;
  replay_target.make_program = scenario.make_program;
  replay_target.env_options = scenario.env_options;
  Replayer replayer(std::move(replay_target));

  // Direct replay mode from the recorder name in metadata: RCSE logs
  // re-execute their relaxed data plane; everything else replays the log
  // as-is. (Inference-based models need scenario hints; `ddr-trace` only
  // does log-driven replay.)
  const ReplayMode mode =
      reader.metadata().model.find("rcse") != std::string::npos
          ? ReplayMode::kRcse
          : ReplayMode::kPerfect;

  ReplayResult result;
  if (has_target) {
    result =
        replayer.PartialReplay(*recording_or, reader.checkpoints(), target, mode);
  } else {
    result = replayer.Replay(*recording_or, mode);
  }

  std::printf("scenario:            %s\n", scenario_name.c_str());
  std::printf("replayed events:     %zu%s\n", result.trace.size(),
              result.partial ? " (suffix only)" : "");
  if (result.partial) {
    std::printf("fast-forwarded to:   event %llu (%s)\n",
                static_cast<unsigned long long>(result.started_from_event),
                result.fast_forward_verified ? "checkpoint verified"
                                             : "unverified");
  }
  std::printf("divergences:         %llu\n",
              static_cast<unsigned long long>(result.divergences));
  std::printf("failure reproduced:  %s\n",
              result.failure_reproduced ? "yes" : "no");
  return result.failure_reproduced || !reader.snapshot().has_failure ? 0 : 2;
}

int RecordScenario(const std::string& scenario_name, const std::string& path,
                   int argc, char** argv) {
  auto registry = ScenarioRegistry();
  auto it = registry.find(scenario_name);
  if (it == registry.end()) {
    std::fprintf(stderr, "ddr-trace: unknown scenario '%s'\n",
                 scenario_name.c_str());
    return 1;
  }

  std::string model_name = "perfect";
  for (int i = 4; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--model") == 0) {
      model_name = argv[i + 1];
    }
  }
  DeterminismModel model = DeterminismModel::kPerfect;
  bool model_found = false;
  for (DeterminismModel candidate : AllDeterminismModels()) {
    if (DeterminismModelName(candidate) == model_name) {
      model = candidate;
      model_found = true;
    }
  }
  // Shell-friendly alias for "debug (RCSE)".
  if (!model_found && (model_name == "debug-rcse" || model_name == "rcse")) {
    model = DeterminismModel::kDebugRcse;
    model_found = true;
  }
  if (!model_found) {
    std::fprintf(stderr, "ddr-trace: unknown model '%s'\n", model_name.c_str());
    return 1;
  }

  ExperimentHarness harness(it->second);
  const Status prepared = harness.Prepare();
  if (!prepared.ok()) {
    std::fprintf(stderr, "ddr-trace: %s\n", prepared.ToString().c_str());
    return 2;
  }
  const RecordedExecution recording = harness.Record(model);

  TraceWriteOptions options;
  options.events_per_chunk = ParseFlag(argc, argv, "--chunk", 512);
  options.checkpoint_interval = ParseFlag(argc, argv, "--ckpt", 256);
  const Status saved = harness.SaveRecording(recording, path, options);
  if (!saved.ok()) {
    std::fprintf(stderr, "ddr-trace: %s\n", saved.ToString().c_str());
    return 2;
  }
  std::printf("recorded %s/%s: %zu events -> %s\n", scenario_name.c_str(),
              model_name.c_str(), recording.log.size(), path.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 3) {
    PrintUsage();
    return 1;
  }
  const std::string command = argv[1];
  const std::string path = argv[2];
  if (command == "info") {
    return Info(path);
  }
  if (command == "dump") {
    return Dump(path, ParseFlag(argc, argv, "--from", 0),
                ParseFlag(argc, argv, "--count", 0));
  }
  if (command == "verify") {
    return VerifyFile(path);
  }
  if (command == "replay") {
    return ReplayFile(path, ParseFlag(argc, argv, "--target", 0),
                      HasFlag(argc, argv, "--target"));
  }
  if (command == "record") {
    if (argc < 4) {
      PrintUsage();
      return 1;
    }
    return RecordScenario(/*scenario_name=*/argv[2], /*path=*/argv[3], argc,
                          argv);
  }
  PrintUsage();
  return 1;
}

}  // namespace
}  // namespace ddr

int main(int argc, char** argv) { return ddr::Main(argc, argv); }
