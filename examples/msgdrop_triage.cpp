// The §2 message-drop server: how a failure-deterministic debugger deceives
// the developer, and how an RCSE race trigger fixes the diagnosis.
//
//   $ ./msgdrop_triage

#include <cstdio>

#include "src/apps/scenarios.h"
#include "src/util/logging.h"

int main() {
  using namespace ddr;  // NOLINT: example brevity

  ExperimentHarness harness(MakeMsgDropScenario());
  CHECK(harness.Prepare().ok());
  std::printf("production failure: %s\n\n",
              harness.production_outcome().primary_failure()->message.c_str());

  ExperimentRow failure = harness.RunModel(DeterminismModel::kFailure);
  std::printf("failure determinism (records nothing):\n");
  std::printf("  inference reproduced the failure in %llu attempts by "
              "hypothesizing '%s'.\n",
              static_cast<unsigned long long>(failure.inference.attempts),
              failure.diagnosed_cause.value_or("-").c_str());
  std::printf("  DF = %.2f: the developer concludes the network was congested\n"
              "  and that nothing can be done -- the race stays in the code.\n\n",
              failure.fidelity);

  ExperimentRow rcse = harness.RunModel(DeterminismModel::kDebugRcse);
  std::printf("debug determinism (combined RCSE, online race trigger):\n");
  std::printf("  overhead %.2fx; replay diagnosed '%s'; DF = %.2f.\n",
              rcse.overhead_multiplier, rcse.diagnosed_cause.value_or("-").c_str(),
              rcse.fidelity);
  std::printf("  The race detector fired during production recording and dialed\n"
              "  fidelity up from the point of detection (Section 3.1.3).\n");
  return 0;
}
