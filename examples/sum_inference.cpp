// The §2 sum example, end to end: why output determinism can fail to
// reproduce a failure at all.
//
//   $ ./sum_inference
//
// The buggy adder returns 5 for inputs (2, 2). An output-deterministic
// recorder keeps only the output "5"; at replay time the constraint solver
// answers "which inputs produce output 5?" with (0, 5) — a perfectly
// correct execution. The failure is gone, and debugging fidelity is 0.

#include <cstdio>

#include "src/apps/scenarios.h"
#include "src/replay/solver.h"
#include "src/util/logging.h"

int main() {
  using namespace ddr;  // NOLINT: example brevity

  // First, show the solver view directly: the §2 thought experiment.
  CspProblem problem;
  const CspProblem::VarId a = problem.AddVariable("a", 0, 10);
  const CspProblem::VarId b = problem.AddVariable("b", 0, 10);
  problem.AddLinearEquals({{a, 1}, {b, 1}}, 5);
  const auto solutions = problem.Solutions(3);
  std::printf("solver: first solutions of a + b == 5 over [0,10]^2:");
  for (const auto& solution : solutions) {
    std::printf(" (%lld,%lld)", static_cast<long long>(solution[0]),
                static_cast<long long>(solution[1]));
  }
  std::printf("\nnone of these is (2,2), the failing production input.\n\n");

  // Now the full pipeline.
  ExperimentHarness harness(MakeSumScenario());
  CHECK(harness.Prepare().ok());
  std::printf("production: inputs (2,2) -> output 5 -> failure '%s'\n\n",
              harness.production_outcome().primary_failure()->message.c_str());

  ExperimentRow output_only = harness.RunModel(DeterminismModel::kOutputOnly);
  std::printf("output determinism: replayed inputs (");
  for (size_t i = 0; i < output_only.input_assignment.size(); ++i) {
    std::printf("%s%lld", i > 0 ? "," : "",
                static_cast<long long>(output_only.input_assignment[i]));
  }
  std::printf(") -> failure reproduced: %s, DF = %.2f\n",
              output_only.failure_reproduced ? "yes" : "no", output_only.fidelity);

  ExperimentRow output_heavy = harness.RunModel(DeterminismModel::kOutputHeavy);
  std::printf("output determinism + recorded inputs: failure reproduced: %s, "
              "DF = %.2f\n",
              output_heavy.failure_reproduced ? "yes" : "no", output_heavy.fidelity);
  return 0;
}
