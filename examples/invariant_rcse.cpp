// Data-based selection (§3.1.2): dynamic invariant inference drives the
// recording-fidelity dial.
//
//   $ ./invariant_rcse
//
// A queue's depth normally stays small; training runs teach the invariant
// inference that bound. In the buggy production run a slow consumer lets
// the depth blow past it — the invariant monitor fires, and the RCSE
// recorder dials up to full fidelity from that point on.

#include <cstdio>

#include "src/analysis/invariants.h"
#include "src/core/rcse.h"
#include "src/sim/program.h"
#include "src/sim/shared_var.h"
#include "src/sim/sync.h"
#include "src/util/logging.h"

namespace {

using namespace ddr;  // NOLINT: example brevity

// Producer/consumer over an instrumented depth gauge. `slow_consumer`
// injects the bug: the consumer sleeps, the queue depth explodes.
class QueueProgram : public SimProgram {
 public:
  explicit QueueProgram(bool slow_consumer) : slow_consumer_(slow_consumer) {}

  std::string name() const override { return "queue"; }

  void Main(Environment& env) override {
    SharedVar<uint64_t> depth(env, "queue.depth", 0);
    SimSemaphore items(env, "queue.items", 0);
    FiberId producer = env.Spawn("producer", [&] {
      for (int i = 0; i < 60; ++i) {
        depth.Store(depth.Load() + 1);
        items.Release();
        env.SleepFor(50 * kMicrosecond);
      }
    });
    FiberId consumer = env.Spawn("consumer", [&] {
      for (int i = 0; i < 60; ++i) {
        items.Acquire();
        if (slow_consumer_ && i == 10) {
          env.SleepFor(2 * kMillisecond);  // the bug: a stall
        }
        depth.Store(depth.Load() - 1);
      }
    });
    env.Join(producer);
    env.Join(consumer);
    env.EmitOutput(depth.Load());
  }

 private:
  bool slow_consumer_;
};

}  // namespace

int main() {
  // 1. Training: learn invariants from three healthy runs.
  InvariantInference inference(/*range_slack=*/0.2);
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Environment::Options options;
    options.seed = seed;
    Environment env(options);
    CollectingSink sink;
    env.AddTraceSink(&sink);
    QueueProgram healthy(/*slow_consumer=*/false);
    env.Run(healthy);
    inference.ObserveTrace(sink.events());
  }
  const InvariantSet invariants = inference.Infer();
  std::printf("learned %zu invariants from 3 training runs:\n", invariants.size());
  for (const auto& [cell, invariant] : invariants.invariants()) {
    std::printf("  %s\n", invariant.ToString().c_str());
  }

  // 2. Production: data-based RCSE with an invariant trigger.
  Environment::Options options;
  options.seed = 99;
  Environment env(options);

  RcseOptions rcse_options;
  rcse_options.mode = RcseMode::kDataBased;
  auto triggers = std::make_unique<TriggerSet>();
  triggers->Add(std::make_unique<InvariantTrigger>(invariants));
  RcseRecorder recorder(rcse_options, std::move(triggers));
  recorder.AttachEnvironment(&env);
  env.AddTraceSink(&recorder);

  QueueProgram buggy(/*slow_consumer=*/true);
  Outcome outcome = env.Run(buggy);
  (void)outcome;

  std::printf("\nproduction run with a stalled consumer:\n");
  std::printf("  trigger fires: %llu, fidelity dial-ups: %llu\n",
              static_cast<unsigned long long>(recorder.trigger_fires()),
              static_cast<unsigned long long>(recorder.dial_ups()));
  std::printf("  events recorded: %llu of %llu intercepted (%.1f%%)\n",
              static_cast<unsigned long long>(recorder.recorded_events()),
              static_cast<unsigned long long>(recorder.intercepted_events()),
              100.0 * static_cast<double>(recorder.recorded_events()) /
                  static_cast<double>(recorder.intercepted_events()));
  CHECK_GT(recorder.dial_ups(), 0u) << "invariant trigger should have fired";
  std::printf("  -> recording fidelity increased exactly when the execution\n"
              "     left its learned envelope.\n");
  return 0;
}
