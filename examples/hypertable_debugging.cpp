// Walkthrough of the paper's §4 case study: debugging the Hypertable
// data-loss race (issue 63) with three replay-debugging strategies.
//
//   $ ./hypertable_debugging
//
// Shows the full pipeline: production failure, plane classification,
// recording under each model, replay/inference, and root-cause diagnosis.

#include <cstdio>

#include "src/apps/scenarios.h"
#include "src/util/logging.h"

int main() {
  using namespace ddr;  // NOLINT: example brevity

  ExperimentHarness harness(MakeHypertableScenario());
  const Status status = harness.Prepare();
  CHECK(status.ok()) << status;

  const Outcome& production = harness.production_outcome();
  std::printf("== production run ==\n");
  std::printf("schedule seed: %llu\n",
              static_cast<unsigned long long>(harness.production_sched_seed()));
  std::printf("failure: %s\n", production.primary_failure()->message.c_str());
  std::printf("events: %llu, virtual duration: %llu ms\n\n",
              static_cast<unsigned long long>(production.stats.events),
              static_cast<unsigned long long>(production.stats.virtual_duration /
                                              1000000));

  std::printf("== value determinism (Friday-class) ==\n");
  ExperimentRow value = harness.RunModel(DeterminismModel::kValue);
  std::printf("records every input, interleaving, and memory value:\n");
  std::printf("  overhead %.2fx, %llu bytes; replay diagnosed '%s' (DF %.2f)\n\n",
              value.overhead_multiplier,
              static_cast<unsigned long long>(value.log_bytes),
              value.diagnosed_cause.value_or("-").c_str(), value.fidelity);

  std::printf("== failure determinism (ESD-class) ==\n");
  ExperimentRow failure = harness.RunModel(DeterminismModel::kFailure);
  std::printf("records only the failure snapshot; inference hypothesizes:\n");
  std::printf("  overhead %.2fx, %llu bytes; %llu inference attempts;\n",
              failure.overhead_multiplier,
              static_cast<unsigned long long>(failure.log_bytes),
              static_cast<unsigned long long>(failure.inference.attempts));
  std::printf("  replay diagnosed '%s' (DF %.2f) -- the wrong root cause:\n"
              "  the developer would blame a slave crash, not the race.\n\n",
              failure.diagnosed_cause.value_or("-").c_str(), failure.fidelity);

  std::printf("== debug determinism via RCSE (control-plane selection) ==\n");
  ExperimentRow rcse = harness.RunModel(DeterminismModel::kDebugRcse);
  std::printf("control-plane regions classified automatically: %zu\n",
              harness.control_regions().size());
  std::printf("  overhead %.2fx, %llu bytes; replay diagnosed '%s' (DF %.2f)\n",
              rcse.overhead_multiplier,
              static_cast<unsigned long long>(rcse.log_bytes),
              rcse.diagnosed_cause.value_or("-").c_str(), rcse.fidelity);
  std::printf("  -> same fidelity as value determinism at %.0f%% of its "
              "overhead.\n",
              100.0 * (rcse.overhead_multiplier - 1.0) /
                  (value.overhead_multiplier - 1.0));
  return 0;
}
