// Quickstart: record a buggy multi-fiber program under debug determinism,
// replay it, and score the replay with the paper's metrics (DF/DE/DU).
//
//   $ ./quickstart
//
// The program has a classic check-then-act race on a shared counter; the
// experiment harness finds a failing production schedule, records it with
// the RCSE recorder, replays from the log alone, and verifies that the
// replayed execution reproduces both the failure and the root cause.

#include <cstdio>

#include "src/core/experiment.h"
#include "src/sim/shared_var.h"
#include "src/sim/sync.h"
#include "src/util/logging.h"

namespace {

using namespace ddr;  // NOLINT: example brevity

constexpr uint64_t kTagLostIncrement = FnvHash("quickstart.lost-increment");

// Four workers increment a shared counter 25 times each without holding the
// lock; the I/O spec expects the exact total.
class CounterProgram : public SimProgram {
 public:
  explicit CounterProgram(uint64_t world_seed) { (void)world_seed; }

  std::string name() const override { return "quickstart-counter"; }

  void Configure(Environment& env) override {
    env.SetIoSpec([](const Outcome& outcome) -> std::optional<FailureInfo> {
      if (outcome.outputs.size() == 1 && outcome.outputs[0].value == 100) {
        return std::nullopt;
      }
      FailureInfo failure;
      failure.kind = FailureKind::kSpecViolation;
      failure.message = "counter total wrong";
      return failure;
    });
  }

  void Main(Environment& env) override {
    SharedVar<uint64_t> counter(env, "counter", 0);
    std::vector<FiberId> workers;
    for (int w = 0; w < 4; ++w) {
      workers.push_back(env.Spawn("worker" + std::to_string(w), [&] {
        for (int i = 0; i < 25; ++i) {
          const uint64_t value = counter.Load();  // BUG: load/store not atomic
          counter.Store(value + 1);
        }
      }));
    }
    for (FiberId worker : workers) {
      env.Join(worker);
    }
    const uint64_t total = counter.Load();
    if (total != 100) {
      env.Annotate(kTagLostIncrement, 100 - total);
    }
    env.EmitOutput(total);
  }
};

}  // namespace

int main() {
  ddr::BugScenario scenario;
  scenario.name = "quickstart";
  scenario.make_program = [](uint64_t world_seed) {
    return std::unique_ptr<ddr::SimProgram>(new CounterProgram(world_seed));
  };
  scenario.env_options.scheduling.preempt_probability = 0.05;
  scenario.catalog = ddr::RootCauseCatalog(
      {ddr::RootCauseSpec{"lost-increment",
                          "unsynchronized read-modify-write on the counter",
                          [](const ddr::ExecutionView& view) {
                            for (const ddr::Event& event : view.events) {
                              if (event.type == ddr::EventType::kAnnotation &&
                                  event.obj == kTagLostIncrement) {
                                return true;
                              }
                            }
                            return false;
                          }}},
      "lost-increment");
  scenario.rcse_mode = ddr::RcseMode::kCombined;  // race trigger dials up

  ddr::ExperimentHarness harness(scenario);
  const ddr::Status status = harness.Prepare();
  CHECK(status.ok()) << status;

  std::printf("found failing production schedule (seed %llu), failure: %s\n",
              static_cast<unsigned long long>(harness.production_sched_seed()),
              harness.production_outcome().primary_failure()->message.c_str());

  const ddr::ExperimentRow row =
      harness.RunModel(ddr::DeterminismModel::kDebugRcse);
  std::printf("recorded with RCSE: overhead %.2fx, %llu log bytes\n",
              row.overhead_multiplier,
              static_cast<unsigned long long>(row.log_bytes));
  std::printf("replay: failure reproduced=%s, diagnosed root cause=%s\n",
              row.failure_reproduced ? "yes" : "no",
              row.diagnosed_cause.value_or("(none)").c_str());
  std::printf("metrics: DF=%.2f DE=%.3f DU=%.3f\n", row.fidelity, row.efficiency,
              row.utility);
  return row.fidelity == 1.0 ? 0 : 1;
}
